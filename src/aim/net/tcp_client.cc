#include "aim/net/tcp_client.h"

#include <algorithm>
#include <chrono>

#include "aim/common/thread_name.h"

namespace aim {
namespace net {

namespace {

std::int64_t NowMillis() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
      .count();
}

/// Receiver poll slice: bounds both Stop() latency and deadline-sweep lag.
constexpr std::int64_t kReceiverPollMillis = 100;

}  // namespace

TcpClient::TcpClient(const Options& options)
    : options_(options), backoff_millis_(options.backoff_initial_millis) {
  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    own_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
  const Labels labels = {
      {"role", "client"},
      {"peer", options_.host + ":" + std::to_string(options_.port)}};
  frames_sent_ = metrics_->GetCounter("aim_net_frames_sent_total", labels);
  frames_received_ =
      metrics_->GetCounter("aim_net_frames_received_total", labels);
  bytes_sent_ = metrics_->GetCounter("aim_net_bytes_sent_total", labels);
  bytes_received_ =
      metrics_->GetCounter("aim_net_bytes_received_total", labels);
  reconnects_ = metrics_->GetCounter("aim_net_reconnects_total", labels);
  timeouts_ = metrics_->GetCounter("aim_net_timeouts_total", labels);
  frame_errors_ = metrics_->GetCounter("aim_net_frame_errors_total", labels);
  CoalescingWriter::Metrics wm;
  wm.frames_sent = frames_sent_;
  wm.bytes_sent = bytes_sent_;
  wm.frames_coalesced =
      metrics_->GetHistogram("aim_net_frames_coalesced", labels);
  writer_.AttachMetrics(wm);
}

TcpClient::~TcpClient() { Close(); }

Status TcpClient::Connect() {
  MutexLock lock(mu_);
  return EnsureConnectedLocked();
}

void TcpClient::Close() {
  std::vector<Pending> orphaned;
  {
    MutexLock lock(mu_);
    if (closed_) return;
    closed_ = true;
    orphaned = DisconnectLocked();
  }
  FailPending(std::move(orphaned), Status::Shutdown("client closed"));
  if (receiver_.joinable()) receiver_.join();
  // A late flusher may still be gather-writing on the (shut down) socket;
  // the fd must stay reserved until it stands down.
  writer_.WaitIdle();
  MutexLock lock(mu_);
  sock_.Close();
}

bool TcpClient::connected() const {
  MutexLock lock(mu_);
  return connected_;
}

NodeChannel::NodeInfo TcpClient::info() const {
  MutexLock lock(mu_);
  return info_;
}

Status TcpClient::EnsureConnectedLocked() {
  if (closed_) return Status::Shutdown("client closed");
  if (connected_) return Status::OK();

  // A previous connection's receiver may still be winding down; never
  // join it before its done flag (set outside mu_) — we hold mu_ and its
  // error path needs it.
  if (receiver_.joinable()) {
    if (!receiver_done_.load(std::memory_order_acquire)) {
      return Status::Internal("previous connection still closing");
    }
    receiver_.join();
  }
  // Same for a flusher still draining onto the dead socket: closing the fd
  // under it would let the kernel recycle the descriptor mid-writev.
  if (writer_.busy()) {
    return Status::Internal("previous connection still closing");
  }
  writer_.Reset();
  sock_.Close();

  const std::int64_t now = NowMillis();
  if (now < next_attempt_millis_) {
    return Status::DeadlineExceeded("reconnect backoff");
  }

  Status st = [&]() -> Status {
    StatusOr<Socket> sock =
        TcpConnect(options_.host, options_.port,
                   options_.connect_timeout_millis);
    if (!sock.ok()) return sock.status();

    // Hello handshake, synchronous on the connect deadline: learn the
    // node identity (routing) and let the server veto a version skew.
    BinaryWriter hello;
    EncodeHello(&hello);
    const std::vector<std::uint8_t> frame =
        BuildFrame(FrameType::kHello, 0, /*request_id=*/0,
                   hello.buffer().data(), hello.size());
    Status io = SendAll(*sock, frame.data(), frame.size(),
                        options_.connect_timeout_millis);
    if (!io.ok()) return io;

    std::uint8_t header_bytes[kFrameHeaderSize];
    io = RecvAll(*sock, header_bytes, kFrameHeaderSize,
                 options_.connect_timeout_millis);
    if (!io.ok()) return io;
    FrameHeader header;
    io = DecodeFrameHeader(header_bytes, &header);
    if (!io.ok() || header.type != FrameType::kHelloReply) {
      return Status::Internal("bad hello reply frame");
    }
    std::vector<std::uint8_t> payload(header.payload_size);
    io = RecvAll(*sock, payload.data(), payload.size(),
                 options_.connect_timeout_millis);
    if (!io.ok()) return io;
    BinaryReader in(payload);
    NodeInfo node_info;
    io = DecodeHelloReply(&in, &node_info);
    if (!io.ok()) return io;

    sock_ = std::move(sock).value();
    info_ = node_info;
    return Status::OK();
  }();

  if (!st.ok()) {
    next_attempt_millis_ = now + backoff_millis_;
    backoff_millis_ = std::min(backoff_millis_ * 2,
                               options_.backoff_max_millis);
    return st;
  }

  connected_ = true;
  backoff_millis_ = options_.backoff_initial_millis;
  next_attempt_millis_ = 0;
  if (ever_connected_) reconnects_->Add();
  ever_connected_ = true;
  receiver_done_.store(false, std::memory_order_release);
  receiver_ = std::thread([this] { ReceiverLoop(); });
  return Status::OK();
}

std::vector<TcpClient::Pending> TcpClient::DisconnectLocked() {
  connected_ = false;
  // Shutdown (not Close): the receiver may still be blocked reading this
  // fd without holding mu_; the fd stays reserved until it is joined.
  sock_.ShutdownBoth();
  std::vector<Pending> orphaned;
  orphaned.reserve(outstanding_.size());
  for (auto& [id, pending] : outstanding_) {
    orphaned.push_back(std::move(pending));
  }
  outstanding_.clear();
  return orphaned;
}

void TcpClient::FailPending(std::vector<Pending> pending,
                            const Status& status) {
  for (Pending& p : pending) {
    if (status.IsDeadlineExceeded()) timeouts_->Add();
    if (p.completion != nullptr) {
      p.completion->status = status;
      p.completion->fired_rules.clear();
      p.completion->done.store(true, std::memory_order_release);
    } else if (p.query_reply) {
      p.query_reply({});  // empty payload = failed, the shutdown idiom
    } else if (p.record_reply) {
      p.record_reply(status, {}, 0);
    }
  }
}

bool TcpClient::EnqueueFrameLocked(FrameType type, std::uint8_t flags,
                                   std::uint64_t request_id,
                                   const std::uint8_t* payload,
                                   std::size_t payload_size,
                                   bool* should_flush) {
  bool elected = false;
  const bool ok = writer_.Enqueue(
      BuildFrame(type, flags, request_id, payload, payload_size), &elected);
  if (elected) *should_flush = true;
  return ok;
}

void TcpClient::FlushWriter(bool should_flush) {
  if (!should_flush) return;
  Status st = writer_.Flush(sock_, options_.write_timeout_millis);
  if (st.ok()) return;
  // Write failure: the stream is broken, so every outstanding request is
  // as lost as its frame. Tear down and fail them immediately.
  std::vector<Pending> orphaned;
  {
    MutexLock lock(mu_);
    if (connected_) orphaned = DisconnectLocked();
  }
  FailPending(std::move(orphaned),
              Status::DeadlineExceeded("connection lost"));
}

bool TcpClient::SubmitEvent(std::vector<std::uint8_t> event_bytes,
                            EventCompletion* completion) {
  bool accepted = false;
  bool should_flush = false;
  {
    MutexLock lock(mu_);
    if (!EnsureConnectedLocked().ok()) return false;
    if (completion == nullptr) {
      accepted = EnqueueFrameLocked(FrameType::kEvent, kFlagNoReply,
                                    /*request_id=*/0, event_bytes.data(),
                                    event_bytes.size(), &should_flush);
    } else {
      const std::uint64_t id = next_request_id_++;
      Pending pending;
      pending.completion = completion;
      pending.deadline_millis =
          NowMillis() + options_.request_timeout_millis;
      outstanding_.emplace(id, std::move(pending));
      accepted = EnqueueFrameLocked(FrameType::kEvent, 0, id,
                                    event_bytes.data(), event_bytes.size(),
                                    &should_flush);
      // Contract: false means the completion is never touched — remove
      // our own entry again.
      if (!accepted) outstanding_.erase(id);
    }
  }
  FlushWriter(should_flush);
  return accepted;
}

std::size_t TcpClient::SubmitEventBatch(std::vector<EventMessage>&& batch) {
  if (batch.empty()) return 0;
  std::size_t accepted = 0;
  bool should_flush = false;
  {
    MutexLock lock(mu_);
    if (!EnsureConnectedLocked().ok()) return 0;
    const bool server_batches =
        (info_.features & kFeatureEventBatch) != 0;
    bool writer_ok = true;

    // Pending run of fire-and-forget events, shipped as one EVENT_BATCH
    // frame where the server understands it.
    std::vector<EventMessage> run;
    auto ship_run = [&]() {
      if (run.empty() || !writer_ok) return;
      if (server_batches && run.size() > 1) {
        BinaryWriter payload;
        EncodeEventBatch(run, &payload);
        writer_ok = EnqueueFrameLocked(
            FrameType::kEventBatch, kFlagNoReply, /*request_id=*/0,
            payload.buffer().data(), payload.size(), &should_flush);
        if (writer_ok) accepted += run.size();
      } else {
        for (EventMessage& msg : run) {
          writer_ok = EnqueueFrameLocked(
              FrameType::kEvent, kFlagNoReply, /*request_id=*/0,
              msg.bytes.data(), msg.bytes.size(), &should_flush);
          if (!writer_ok) break;
          ++accepted;
        }
      }
      run.clear();
    };

    for (EventMessage& msg : batch) {
      if (!writer_ok) break;
      if (msg.completion == nullptr) {
        run.push_back(std::move(msg));
        continue;
      }
      // Reply-wanted events keep per-event frames: each needs its own
      // request id and its exact per-event status + fired rules.
      ship_run();
      if (!writer_ok) break;
      const std::uint64_t id = next_request_id_++;
      Pending pending;
      pending.completion = msg.completion;
      pending.deadline_millis =
          NowMillis() + options_.request_timeout_millis;
      outstanding_.emplace(id, std::move(pending));
      writer_ok = EnqueueFrameLocked(FrameType::kEvent, 0, id,
                                     msg.bytes.data(), msg.bytes.size(),
                                     &should_flush);
      if (!writer_ok) {
        outstanding_.erase(id);
        break;
      }
      ++accepted;
    }
    ship_run();
  }
  FlushWriter(should_flush);
  return accepted;
}

bool TcpClient::SubmitQuery(
    std::vector<std::uint8_t> query_bytes,
    std::function<void(std::vector<std::uint8_t>&&)> reply) {
  bool accepted = false;
  bool should_flush = false;
  {
    MutexLock lock(mu_);
    if (!EnsureConnectedLocked().ok()) return false;
    const std::uint64_t id = next_request_id_++;
    Pending pending;
    pending.query_reply = std::move(reply);
    pending.deadline_millis = NowMillis() + options_.request_timeout_millis;
    auto [it, inserted] = outstanding_.emplace(id, std::move(pending));
    accepted = EnqueueFrameLocked(FrameType::kQuery, 0, id,
                                  query_bytes.data(), query_bytes.size(),
                                  &should_flush);
    if (!accepted) outstanding_.erase(it);
  }
  FlushWriter(should_flush);
  return accepted;
}

bool TcpClient::SubmitRecordRequest(RecordRequest request) {
  BinaryWriter payload;
  EncodeRecordRequest(request, &payload);
  bool accepted = false;
  bool should_flush = false;
  {
    MutexLock lock(mu_);
    if (!EnsureConnectedLocked().ok()) return false;
    const std::uint64_t id = next_request_id_++;
    Pending pending;
    pending.record_reply = std::move(request.reply);
    pending.deadline_millis = NowMillis() + options_.request_timeout_millis;
    auto [it, inserted] = outstanding_.emplace(id, std::move(pending));
    accepted = EnqueueFrameLocked(FrameType::kRecordRequest, 0, id,
                                  payload.buffer().data(), payload.size(),
                                  &should_flush);
    if (!accepted) outstanding_.erase(it);
  }
  FlushWriter(should_flush);
  return accepted;
}

Status TcpClient::EventRoundTrip(std::vector<std::uint8_t> event_bytes,
                                 std::vector<std::uint32_t>* fired_rules) {
  EventCompletion completion;
  if (!SubmitEvent(std::move(event_bytes), &completion)) {
    return Status::DeadlineExceeded("peer unreachable");
  }
  // Safe unbounded wait: the client itself guarantees completion — the
  // receiver fails it at the request deadline or on disconnect.
  completion.Wait();
  if (fired_rules != nullptr) *fired_rules = completion.fired_rules;
  return completion.status;
}

void TcpClient::ReceiverLoop() {
  SetCurrentThreadName("aim-cli-rx");
  std::uint8_t header_bytes[kFrameHeaderSize];
  for (;;) {
    Status readable = WaitReadable(sock_, kReceiverPollMillis);
    if (readable.IsDeadlineExceeded()) {
      SweepDeadlines();
      {
        MutexLock lock(mu_);
        if (!connected_) break;
      }
      continue;
    }
    if (!readable.ok()) break;

    Status st = RecvAll(sock_, header_bytes, kFrameHeaderSize,
                        options_.request_timeout_millis);
    if (!st.ok()) break;
    FrameHeader header;
    st = DecodeFrameHeader(header_bytes, &header);
    if (!st.ok()) {
      frame_errors_->Add();
      break;  // framing lost
    }
    std::vector<std::uint8_t> payload(header.payload_size);
    if (header.payload_size > 0) {
      st = RecvAll(sock_, payload.data(), payload.size(),
                   options_.request_timeout_millis);
      if (!st.ok()) break;
    }
    frames_received_->Add();
    bytes_received_->Add(kFrameHeaderSize + payload.size());
    DispatchReply(header, std::move(payload));
    SweepDeadlines();
  }

  // Connection gone: fail everything still in flight, then hand the
  // socket back (joined + closed by the next connect attempt or Close).
  std::vector<Pending> orphaned;
  {
    MutexLock lock(mu_);
    if (connected_) orphaned = DisconnectLocked();
  }
  FailPending(std::move(orphaned),
              Status::DeadlineExceeded("connection lost"));
  receiver_done_.store(true, std::memory_order_release);
}

void TcpClient::DispatchReply(const FrameHeader& header,
                              std::vector<std::uint8_t>&& payload) {
  Pending pending;
  {
    MutexLock lock(mu_);
    auto it = outstanding_.find(header.request_id);
    if (it == outstanding_.end()) return;  // expired request's late reply
    pending = std::move(it->second);
    outstanding_.erase(it);
  }

  switch (header.type) {
    case FrameType::kEventReply: {
      if (pending.completion == nullptr) break;
      BinaryReader in(payload);
      Status status;
      std::vector<std::uint32_t> fired;
      if (!DecodeEventReply(&in, &status, &fired).ok()) {
        frame_errors_->Add();
        status = Status::Internal("malformed event reply");
        fired.clear();
      }
      pending.completion->status = std::move(status);
      pending.completion->fired_rules = std::move(fired);
      pending.completion->done.store(true, std::memory_order_release);
      return;
    }
    case FrameType::kQueryReply: {
      if (!pending.query_reply) break;
      pending.query_reply(std::move(payload));
      return;
    }
    case FrameType::kRecordReply: {
      if (!pending.record_reply) break;
      BinaryReader in(payload);
      Status status;
      std::vector<std::uint8_t> row;
      Version version = 0;
      if (!DecodeRecordReply(&in, &status, &row, &version).ok()) {
        frame_errors_->Add();
        status = Status::Internal("malformed record reply");
        row.clear();
        version = 0;
      }
      pending.record_reply(std::move(status), std::move(row), version);
      return;
    }
    default:
      break;
  }
  // Reply type didn't match the request's sink: protocol confusion.
  frame_errors_->Add();
  FailPending({std::move(pending)}, Status::Internal("mismatched reply"));
}

void TcpClient::SweepDeadlines() {
  std::vector<Pending> expired;
  {
    MutexLock lock(mu_);
    const std::int64_t now = NowMillis();
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
      if (now >= it->second.deadline_millis) {
        expired.push_back(std::move(it->second));
        it = outstanding_.erase(it);
      } else {
        ++it;
      }
    }
  }
  FailPending(std::move(expired),
              Status::DeadlineExceeded("request deadline"));
}

}  // namespace net
}  // namespace aim
