#include "aim/net/coalescing_writer.h"

#include <utility>

#include "aim/common/logging.h"

namespace aim {
namespace net {

bool CoalescingWriter::Enqueue(std::vector<std::uint8_t> frame,
                               bool* should_flush) {
  MutexLock lock(mu_);
  if (failed_) {
    *should_flush = false;
    return false;
  }
  queue_.push_back(std::move(frame));
  if (!in_flight_) {
    in_flight_ = true;
    *should_flush = true;
  } else {
    *should_flush = false;
  }
  return true;
}

Status CoalescingWriter::Flush(const Socket& socket,
                               std::int64_t timeout_millis) {
  std::vector<std::vector<std::uint8_t>> batch;
  for (;;) {
    {
      MutexLock lock(mu_);
      AIM_DCHECK_MSG(in_flight_, "Flush without election");
      if (queue_.empty() || failed_) {
        in_flight_ = false;
        idle_cv_.notify_all();
        return failed_ ? Status::Internal("coalescing writer failed")
                       : Status::OK();
      }
      batch.clear();
      batch.swap(queue_);
    }
    Status st = SendFrames(socket, batch, timeout_millis);
    if (!st.ok()) {
      MutexLock lock(mu_);
      failed_ = true;
      queue_.clear();  // broken stream: nothing queued can be framed now
      in_flight_ = false;
      idle_cv_.notify_all();
      return st;
    }
    if (metrics_.frames_coalesced != nullptr) {
      metrics_.frames_coalesced->Record(batch.size());
    }
    if (metrics_.frames_sent != nullptr) {
      metrics_.frames_sent->Add(batch.size());
    }
    if (metrics_.bytes_sent != nullptr) {
      std::uint64_t bytes = 0;
      for (const auto& f : batch) bytes += f.size();
      metrics_.bytes_sent->Add(bytes);
    }
  }
}

bool CoalescingWriter::busy() const {
  MutexLock lock(mu_);
  return in_flight_;
}

bool CoalescingWriter::failed() const {
  MutexLock lock(mu_);
  return failed_;
}

void CoalescingWriter::WaitIdle() {
  MutexLock lock(mu_);
  while (in_flight_) {
    idle_cv_.wait(lock);
  }
}

void CoalescingWriter::Reset() {
  MutexLock lock(mu_);
  AIM_DCHECK_MSG(!in_flight_, "Reset while a flush is in flight");
  failed_ = false;
  queue_.clear();
}

}  // namespace net
}  // namespace aim
