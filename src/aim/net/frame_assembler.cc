#include "aim/net/frame_assembler.h"

namespace aim {
namespace net {

Status FrameAssembler::Push(const std::uint8_t* data, std::size_t size) {
  if (!status_.ok()) return status_;
  buf_.insert(buf_.end(), data, data + size);
  return status_;
}

bool FrameAssembler::Next(FrameHeader* header,
                          std::vector<std::uint8_t>* payload) {
  if (!status_.ok()) return false;
  if (buffered() >= kFrameHeaderSize) {
    FrameHeader h;
    Status st = DecodeFrameHeader(buf_.data() + consumed_, &h);
    if (!st.ok()) {
      // Framing lost: drop everything buffered and fail permanently.
      status_ = st;
      buf_.clear();
      buf_.shrink_to_fit();
      consumed_ = 0;
      return false;
    }
    if (buffered() >= kFrameHeaderSize + h.payload_size) {
      *header = h;
      const std::uint8_t* begin = buf_.data() + consumed_ + kFrameHeaderSize;
      payload->assign(begin, begin + h.payload_size);
      consumed_ += kFrameHeaderSize + h.payload_size;
      return true;
    }
  }
  // Incomplete frame: compact the drained prefix now, while the residue is
  // at most one frame, so the buffer never grows by re-appending behind a
  // long-dead prefix (and the erase cost stays proportional to the residue).
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return false;
}

}  // namespace net
}  // namespace aim
