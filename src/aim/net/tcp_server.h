#ifndef AIM_NET_TCP_SERVER_H_
#define AIM_NET_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aim/common/annotated_mutex.h"
#include "aim/net/coalescing_writer.h"
#include "aim/net/frame.h"
#include "aim/net/node_channel.h"
#include "aim/net/socket.h"
#include "aim/obs/registry.h"

namespace aim {
namespace net {

/// TCP front door of one storage node (paper §4.2, Figure 4: ESP nodes,
/// RTA front-ends and drivers reach storage over the network). Serves the
/// frame protocol (frame.h) against any NodeChannel — in production the
/// node's LocalNodeChannel, in tests possibly a mock.
///
/// Threading: one accept thread plus one handler thread per connection
/// (bounded by Options::max_connections; excess connections are refused by
/// an immediate close). Event frames that want a reply are served
/// synchronously on the handler thread; query and record replies are
/// written asynchronously from the node's service threads under a
/// per-connection write lock, so one connection can have many requests in
/// flight. Clients that need event and query traffic to never head-of-line
/// block each other use one connection per traffic class (TcpClient does).
///
/// Lifecycle: Start binds and serves; Stop refuses new work, wakes every
/// blocked thread and joins them. Stop the server before or after the
/// node — both orders are safe because an in-process node always drains
/// its queues (completions and replies are guaranteed).
class TcpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; read back via port()
    std::uint32_t max_connections = 64;
    /// Per-frame socket I/O deadline (header+payload read, reply write).
    std::int64_t io_timeout_millis = 10'000;
    /// Registry for the aim_net_* server series. Null = metrics disabled
    /// is not an option — the node's registry is the natural home; when
    /// null the server owns a private one.
    MetricsRegistry* metrics = nullptr;
  };

  /// `node` must outlive the server.
  TcpServer(NodeChannel* node, const Options& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  Status Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (valid after Start; resolves port 0).
  std::uint16_t port() const { return port_; }

 private:
  /// Per-connection state shared with asynchronous reply writers. The
  /// socket lives here so a query reply arriving after the handler thread
  /// exited still refers to a reserved (if shut down) fd, never a recycled
  /// one.
  struct ConnectionState {
    Socket sock;
    /// Reply frames from the handler and the node's service threads are
    /// coalesced per connection: whoever is elected flusher gather-writes
    /// everything queued meanwhile with one writev.
    CoalescingWriter writer;
    std::atomic<bool> open{true};
    std::atomic<bool> done{false};  // handler thread exited
  };

  struct Connection {
    std::shared_ptr<ConnectionState> state;
    std::thread thread;
  };

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<ConnectionState> state);
  /// Dispatches one reassembled frame to the node. Malformed payloads
  /// count a frame error; header-level garbage never gets here (the
  /// assembler drops the connection first). May mark the connection
  /// closed (protocol violation) via `state->open`.
  void HandleFrame(const std::shared_ptr<ConnectionState>& state,
                   const FrameHeader& header,
                   std::vector<std::uint8_t>&& payload);
  /// Serializes one frame and queues it on the connection's coalescing
  /// writer (flushing when elected). Any write failure marks the
  /// connection closed.
  void WriteFrame(ConnectionState* state, FrameType type,
                  std::uint64_t request_id, const BinaryWriter& payload);
  void PruneFinished() AIM_EXCLUDES(connections_mu_);

  NodeChannel* node_;
  Options options_;

  Socket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  Mutex connections_mu_;
  std::vector<Connection> connections_ AIM_GUARDED_BY(connections_mu_);

  std::unique_ptr<MetricsRegistry> own_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  Counter* frames_received_ = nullptr;
  Counter* frames_sent_ = nullptr;
  Counter* bytes_received_ = nullptr;
  Counter* bytes_sent_ = nullptr;
  Counter* frame_errors_ = nullptr;
  Counter* connections_total_ = nullptr;
  Gauge* connections_gauge_ = nullptr;
  AtomicHistogram* frames_coalesced_ = nullptr;
};

}  // namespace net
}  // namespace aim

#endif  // AIM_NET_TCP_SERVER_H_
