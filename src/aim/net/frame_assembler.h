#ifndef AIM_NET_FRAME_ASSEMBLER_H_
#define AIM_NET_FRAME_ASSEMBLER_H_

#include <cstdint>
#include <vector>

#include "aim/common/status.h"
#include "aim/net/frame.h"

namespace aim {
namespace net {

/// Incremental byte-stream -> frame reassembly: the receive half of the
/// frame protocol, factored out of the socket loop so the exact production
/// decode path can be driven with arbitrary byte splits — by unit tests
/// (net_test) and by the stateful fuzz harness (fuzz/fuzz_frame_stream.cc),
/// which is what certifies this class against hostile streams.
///
/// Usage: Push() whatever the transport produced (any split: one byte at a
/// time, many frames at once), then drain completed frames with Next()
/// until it returns false; repeat. Header-level corruption — bad magic,
/// unknown type, a payload announcement over kMaxFramePayload — poisons the
/// assembler permanently: framing is unrecoverable on a byte stream, so the
/// connection must be dropped (DecodeFrameHeader's contract).
///
/// Allocation is bounded by construction: a header announcing more than
/// kMaxFramePayload fails *before* any payload-sized buffer exists, and the
/// internal buffer holds only bytes actually received. A caller that drains
/// Next() after every Push() therefore never buffers more than one
/// incomplete frame (< kFrameHeaderSize + kMaxFramePayload bytes) plus one
/// receive chunk.
class FrameAssembler {
 public:
  /// Appends stream bytes. Returns the sticky status; pushing after a
  /// failure is a no-op.
  Status Push(const std::uint8_t* data, std::size_t size);

  /// Pops the next complete frame into `header` + `payload` (resized to
  /// exactly the payload). Returns false when more bytes are needed or the
  /// assembler is poisoned — distinguish via ok().
  bool Next(FrameHeader* header, std::vector<std::uint8_t>* payload);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Bytes received but not yet returned by Next().
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  // frames already handed out, compacted lazily
  Status status_;
};

}  // namespace net
}  // namespace aim

#endif  // AIM_NET_FRAME_ASSEMBLER_H_
