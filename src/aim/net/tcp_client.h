#ifndef AIM_NET_TCP_CLIENT_H_
#define AIM_NET_TCP_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "aim/common/annotated_mutex.h"
#include "aim/net/coalescing_writer.h"
#include "aim/net/frame.h"
#include "aim/net/node_channel.h"
#include "aim/net/socket.h"
#include "aim/obs/registry.h"

namespace aim {
namespace net {

/// NodeChannel over one TCP connection to a TcpServer — the remote leg of
/// the paper's distributed deployment (§4.2, Figure 4). Drop-in for a
/// StorageNode pointer in EspTierNode / RtaFrontEnd via the channel
/// constructors.
///
/// Robustness contract (the part an in-process channel never needs):
///  - every socket operation carries a deadline (connect, write, reply);
///  - an accepted request is always completed: replies that never arrive —
///    deadline expiry or a dropped connection — complete with
///    Status::DeadlineExceeded (events, records) or an empty payload
///    (queries), never a hang;
///  - a lost connection is reconnected lazily on the next submit, gated by
///    capped exponential backoff (submits during backoff fail fast with
///    `false`, matching a stopped in-process node).
///
/// Threading: submits may come from any thread (writes serialize on an
/// internal mutex); one receiver thread dispatches replies and sweeps
/// request deadlines every ~100ms.
class TcpClient : public NodeChannel {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::int64_t connect_timeout_millis = 2'000;
    /// Reply deadline per request, measured from submission.
    std::int64_t request_timeout_millis = 5'000;
    std::int64_t write_timeout_millis = 2'000;
    /// Reconnect backoff: initial delay, doubled per failed attempt up to
    /// the cap, reset by a successful connect.
    std::int64_t backoff_initial_millis = 10;
    std::int64_t backoff_max_millis = 2'000;
    /// Registry for the aim_net_* client series (labels role="client",
    /// peer="host:port"). When null the client owns a private one.
    MetricsRegistry* metrics = nullptr;
  };

  explicit TcpClient(const Options& options);
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Eagerly connects (and runs the hello handshake that fills info()).
  /// Optional — any submit connects lazily — but callers that route by
  /// PartitionOf before the first submit need the handshake's node
  /// identity first.
  Status Connect();
  void Close();
  bool connected() const;

  // NodeChannel interface.
  NodeInfo info() const override;
  bool SubmitEvent(std::vector<std::uint8_t> event_bytes,
                   EventCompletion* completion) override;
  /// Batched submission. Runs of fire-and-forget events ship as one
  /// EVENT_BATCH frame when the server advertised kFeatureEventBatch
  /// (falling back to per-event kEvent frames against old servers);
  /// reply-wanted events always use per-event frames so each keeps its
  /// exact per-event reply. Either way all frames of the batch enter the
  /// coalescing writer under one lock hold and typically leave in one
  /// writev.
  std::size_t SubmitEventBatch(std::vector<EventMessage>&& batch) override;
  bool SubmitQuery(
      std::vector<std::uint8_t> query_bytes,
      std::function<void(std::vector<std::uint8_t>&&)> reply) override;
  bool SubmitRecordRequest(RecordRequest request) override;

  /// Synchronous event round trip: submit, wait for the (deadline-bounded)
  /// completion, return its status. Convenience for drivers and benches.
  Status EventRoundTrip(std::vector<std::uint8_t> event_bytes,
                        std::vector<std::uint32_t>* fired_rules);

  const Options& options() const { return options_; }

 private:
  /// One in-flight request: exactly one of the three reply sinks is set.
  struct Pending {
    EventCompletion* completion = nullptr;
    std::function<void(std::vector<std::uint8_t>&&)> query_reply;
    std::function<void(Status, std::vector<std::uint8_t>&&, Version)>
        record_reply;
    std::int64_t deadline_millis = 0;
  };

  Status EnsureConnectedLocked() AIM_REQUIRES(mu_);
  /// Marks the connection lost, wakes the receiver and fails every
  /// outstanding request (outside the lock, via the returned list).
  std::vector<Pending> DisconnectLocked() AIM_REQUIRES(mu_);
  /// Queues one frame on the coalescing writer (under mu_). Returns false
  /// if the writer has failed; `*should_flush` tells the caller to run
  /// FlushWriter after releasing mu_.
  bool EnqueueFrameLocked(FrameType type, std::uint8_t flags,
                          std::uint64_t request_id,
                          const std::uint8_t* payload,
                          std::size_t payload_size, bool* should_flush)
      AIM_REQUIRES(mu_);
  /// Runs the elected flush outside mu_; a write failure tears the
  /// connection down (outstanding requests fail immediately).
  void FlushWriter(bool should_flush) AIM_EXCLUDES(mu_);
  void FailPending(std::vector<Pending> pending, const Status& status);
  void ReceiverLoop();
  void DispatchReply(const FrameHeader& header,
                     std::vector<std::uint8_t>&& payload) AIM_EXCLUDES(mu_);
  void SweepDeadlines() AIM_EXCLUDES(mu_);

  Options options_;

  mutable Mutex mu_;
  // Deliberately not AIM_GUARDED_BY(mu_): the receiver thread reads sock_
  // without the lock by design — the fd stays reserved (shutdown, not
  // closed) until the receiver is joined, and EnsureConnectedLocked never
  // reassigns it while the receiver or a flusher is alive.
  Socket sock_;
  // Write path: frames enter under mu_, the elected flusher gather-writes
  // them outside mu_ (sock_ is never closed or reassigned while the writer
  // is busy — EnsureConnectedLocked and Close wait it out first). The
  // writer is internally synchronized.
  CoalescingWriter writer_;
  bool connected_ AIM_GUARDED_BY(mu_) = false;
  bool closed_ AIM_GUARDED_BY(mu_) = false;
  bool ever_connected_ AIM_GUARDED_BY(mu_) = false;
  NodeInfo info_ AIM_GUARDED_BY(mu_);
  std::uint64_t next_request_id_ AIM_GUARDED_BY(mu_) = 1;
  std::unordered_map<std::uint64_t, Pending> outstanding_
      AIM_GUARDED_BY(mu_);
  std::int64_t backoff_millis_ AIM_GUARDED_BY(mu_) = 0;
  std::int64_t next_attempt_millis_ AIM_GUARDED_BY(mu_) = 0;

  std::thread receiver_;
  // Set by the receiver as its very last action outside mu_, so a joiner
  // holding mu_ can never deadlock against a receiver still winding down.
  std::atomic<bool> receiver_done_{false};

  std::unique_ptr<MetricsRegistry> own_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  Counter* frames_sent_ = nullptr;
  Counter* frames_received_ = nullptr;
  Counter* bytes_sent_ = nullptr;
  Counter* bytes_received_ = nullptr;
  Counter* reconnects_ = nullptr;
  Counter* timeouts_ = nullptr;
  Counter* frame_errors_ = nullptr;
};

}  // namespace net
}  // namespace aim

#endif  // AIM_NET_TCP_CLIENT_H_
