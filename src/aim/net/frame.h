#ifndef AIM_NET_FRAME_H_
#define AIM_NET_FRAME_H_

#include <cstdint>
#include <vector>

#include "aim/common/binary_io.h"
#include "aim/common/status.h"
#include "aim/common/types.h"
#include "aim/net/node_channel.h"

namespace aim {
namespace net {

/// Length-prefixed frame protocol of the AIM cluster transport (see
/// docs/NETWORKING.md). Every message on a connection is one frame:
///
///   magic u32 | type u8 | flags u8 | reserved u16 | request_id u64 |
///   payload_size u32 | payload bytes
///
/// The 20-byte header and all payloads use the BinaryWriter/BinaryReader
/// little-endian wire format (enforced at build time in binary_io.h).
/// request_id matches a reply to its request; id 0 is reserved for
/// fire-and-forget frames that never get a reply (kFlagNoReply).

inline constexpr std::uint32_t kFrameMagic = 0x464D4941;  // "AIMF"
inline constexpr std::size_t kFrameHeaderSize = 20;
/// Upper bound on a payload: larger than any serialized query or partial
/// result by orders of magnitude; a header announcing more than this is
/// garbage and fails the connection instead of a giant allocation.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;
inline constexpr std::uint32_t kProtocolVersion = 1;

enum class FrameType : std::uint8_t {
  kHello = 1,         // client -> server: protocol version
  kHelloReply = 2,    // server -> client: version + NodeInfo [+ features]
  kEvent = 3,         // 64-byte event wire format
  kEventReply = 4,    // status + fired rule ids
  kQuery = 5,         // serialized Query
  kQueryReply = 6,    // serialized PartialResult (empty = failed/shutdown)
  kRecordRequest = 7, // kind + entity + expected_version + row
  kRecordReply = 8,   // status + version + row
  kEventBatch = 9,    // count + count x 64-byte events (batched ingest)
};

/// kEvent flag: no reply wanted (fire-and-forget submission).
inline constexpr std::uint8_t kFlagNoReply = 1u << 0;

struct FrameHeader {
  FrameType type = FrameType::kHello;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_size = 0;
};

/// Appends the 20-byte header for `header` to `out`.
void EncodeFrameHeader(const FrameHeader& header, BinaryWriter* out);

/// Parses a header from exactly kFrameHeaderSize bytes. Fails with
/// kInvalidArgument on a bad magic, unknown type, or oversized payload —
/// the caller must then drop the connection (framing is lost).
Status DecodeFrameHeader(const std::uint8_t* bytes, FrameHeader* header);

/// Builds one complete frame (header + payload) ready to write to a socket.
std::vector<std::uint8_t> BuildFrame(FrameType type, std::uint8_t flags,
                                     std::uint64_t request_id,
                                     const std::uint8_t* payload,
                                     std::size_t payload_size);

// --- payload codecs ---------------------------------------------------------
// Encode*/Decode* pairs for the payloads that are not already a serialized
// domain object (events, queries and partials ship their existing wire
// formats verbatim). Decoders return kInvalidArgument on malformed input
// (BinaryReader's sticky-error path).

void EncodeStatusPayload(const Status& status, BinaryWriter* out);
Status DecodeStatusPayload(BinaryReader* in, Status* status);

void EncodeHello(BinaryWriter* out);
Status DecodeHello(BinaryReader* in, std::uint32_t* version);

void EncodeHelloReply(const NodeChannel::NodeInfo& info, BinaryWriter* out);
Status DecodeHelloReply(BinaryReader* in, NodeChannel::NodeInfo* info);

void EncodeEventReply(const Status& status,
                      const std::vector<std::uint32_t>& fired_rules,
                      BinaryWriter* out);
Status DecodeEventReply(BinaryReader* in, Status* status,
                        std::vector<std::uint32_t>* fired_rules);

void EncodeRecordRequest(const RecordRequest& request, BinaryWriter* out);
/// Decodes everything but the reply callback (a transport artifact).
Status DecodeRecordRequest(BinaryReader* in, RecordRequest* request);

void EncodeRecordReply(const Status& status,
                       const std::vector<std::uint8_t>& row, Version version,
                       BinaryWriter* out);
Status DecodeRecordReply(BinaryReader* in, Status* status,
                         std::vector<std::uint8_t>* row, Version* version);

/// EVENT_BATCH payload: u32 count, then exactly count concatenated 64-byte
/// event payloads — each entry is byte-identical to a kEvent payload, so
/// batching never re-encodes events. Old peers that don't know the type
/// reject the frame at the header (their DecodeFrameHeader range check),
/// which is why senders gate it on NodeChannel::kFeatureEventBatch.
inline constexpr std::size_t kEventBatchEntrySize = 64;
/// Largest count a well-formed EVENT_BATCH payload can announce.
inline constexpr std::uint32_t kMaxEventBatchCount =
    (kMaxFramePayload - 4) / kEventBatchEntrySize;

void EncodeEventBatch(const std::vector<EventMessage>& batch,
                      BinaryWriter* out);
/// Splits a batch payload back into per-event byte vectors (cleared first;
/// each decoded vector is exactly kEventBatchEntrySize bytes). The count
/// must match the payload size exactly — any truncation or excess fails.
Status DecodeEventBatch(BinaryReader* in,
                        std::vector<std::vector<std::uint8_t>>* events);

}  // namespace net
}  // namespace aim

#endif  // AIM_NET_FRAME_H_
