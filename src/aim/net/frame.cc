#include "aim/net/frame.h"

#include <cstring>

#include "aim/common/logging.h"
#include "aim/esp/event.h"

namespace aim {
namespace net {

void EncodeFrameHeader(const FrameHeader& header, BinaryWriter* out) {
  out->PutU32(kFrameMagic);
  out->PutU8(static_cast<std::uint8_t>(header.type));
  out->PutU8(header.flags);
  out->PutU16(0);  // reserved
  out->PutU64(header.request_id);
  out->PutU32(header.payload_size);
}

Status DecodeFrameHeader(const std::uint8_t* bytes, FrameHeader* header) {
  BinaryReader in(bytes, kFrameHeaderSize);
  if (in.GetU32() != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  const std::uint8_t type = in.GetU8();
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kEventBatch)) {
    return Status::InvalidArgument("unknown frame type");
  }
  header->type = static_cast<FrameType>(type);
  header->flags = in.GetU8();
  in.GetU16();  // reserved
  header->request_id = in.GetU64();
  header->payload_size = in.GetU32();
  if (header->payload_size > kMaxFramePayload) {
    return Status::InvalidArgument("oversized frame payload");
  }
  return Status::OK();
}

std::vector<std::uint8_t> BuildFrame(FrameType type, std::uint8_t flags,
                                     std::uint64_t request_id,
                                     const std::uint8_t* payload,
                                     std::size_t payload_size) {
  FrameHeader header;
  header.type = type;
  header.flags = flags;
  header.request_id = request_id;
  header.payload_size = static_cast<std::uint32_t>(payload_size);
  BinaryWriter out;
  EncodeFrameHeader(header, &out);
  if (payload_size > 0) out.PutBytes(payload, payload_size);
  return out.TakeBuffer();
}

void EncodeStatusPayload(const Status& status, BinaryWriter* out) {
  out->PutU8(static_cast<std::uint8_t>(status.code()));
  out->PutString(status.message());
}

Status DecodeStatusPayload(BinaryReader* in, Status* status) {
  const std::uint8_t code = in->GetU8();
  std::string message = in->GetString();
  if (!in->ok() ||
      code > static_cast<std::uint8_t>(Status::Code::kDeadlineExceeded)) {
    return Status::InvalidArgument("malformed status payload");
  }
  // Round-trip through the factory matching the code; the default arm keeps
  // unknown-but-range-checked codes from ever minting a fake OK.
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      *status = Status::OK();
      break;
    case Status::Code::kNotFound:
      *status = Status::NotFound(std::move(message));
      break;
    case Status::Code::kConflict:
      *status = Status::Conflict(std::move(message));
      break;
    case Status::Code::kInvalidArgument:
      *status = Status::InvalidArgument(std::move(message));
      break;
    case Status::Code::kCapacity:
      *status = Status::Capacity(std::move(message));
      break;
    case Status::Code::kUnsupported:
      *status = Status::Unsupported(std::move(message));
      break;
    case Status::Code::kInternal:
      *status = Status::Internal(std::move(message));
      break;
    case Status::Code::kTimedOut:
      *status = Status::TimedOut(std::move(message));
      break;
    case Status::Code::kShutdown:
      *status = Status::Shutdown(std::move(message));
      break;
    case Status::Code::kDeadlineExceeded:
      *status = Status::DeadlineExceeded(std::move(message));
      break;
  }
  return Status::OK();
}

void EncodeHello(BinaryWriter* out) { out->PutU32(kProtocolVersion); }

Status DecodeHello(BinaryReader* in, std::uint32_t* version) {
  *version = in->GetU32();
  if (!in->ok()) return Status::InvalidArgument("malformed hello");
  return Status::OK();
}

void EncodeHelloReply(const NodeChannel::NodeInfo& info, BinaryWriter* out) {
  out->PutU32(kProtocolVersion);
  out->PutU32(info.node_id);
  out->PutU32(info.num_partitions);
  out->PutU32(info.record_size);
  // Capability bits, appended after the version-1 fields: old clients stop
  // reading before them, new clients read them when present — so the same
  // protocol version serves mixed-version deployments.
  out->PutU32(info.features);
}

Status DecodeHelloReply(BinaryReader* in, NodeChannel::NodeInfo* info) {
  const std::uint32_t version = in->GetU32();
  info->node_id = in->GetU32();
  info->num_partitions = in->GetU32();
  info->record_size = in->GetU32();
  if (!in->ok()) return Status::InvalidArgument("malformed hello reply");
  // Optional trailing capability bits (absent from old servers = 0).
  info->features = in->remaining() >= 4 ? in->GetU32() : 0;
  if (version != kProtocolVersion) {
    return Status::Unsupported("protocol version mismatch");
  }
  if (info->num_partitions == 0) {
    return Status::InvalidArgument("hello reply with zero partitions");
  }
  return Status::OK();
}

void EncodeEventReply(const Status& status,
                      const std::vector<std::uint32_t>& fired_rules,
                      BinaryWriter* out) {
  EncodeStatusPayload(status, out);
  out->PutU32(static_cast<std::uint32_t>(fired_rules.size()));
  for (std::uint32_t rule : fired_rules) out->PutU32(rule);
}

Status DecodeEventReply(BinaryReader* in, Status* status,
                        std::vector<std::uint32_t>* fired_rules) {
  Status parse = DecodeStatusPayload(in, status);
  if (!parse.ok()) return parse;
  // Checked count: validated against the bytes present before the reserve,
  // so a hostile length claim cannot force an allocation.
  const std::uint32_t n = in->GetCountU32(sizeof(std::uint32_t));
  if (!in->ok()) {
    return Status::InvalidArgument("malformed event reply");
  }
  fired_rules->clear();
  fired_rules->reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) fired_rules->push_back(in->GetU32());
  if (!in->ok()) return Status::InvalidArgument("malformed event reply");
  return Status::OK();
}

void EncodeRecordRequest(const RecordRequest& request, BinaryWriter* out) {
  out->PutU8(static_cast<std::uint8_t>(request.kind));
  out->PutU64(request.entity);
  out->PutU64(request.expected_version);
  out->PutU32(static_cast<std::uint32_t>(request.row.size()));
  if (!request.row.empty()) {
    out->PutBytes(request.row.data(), request.row.size());
  }
}

Status DecodeRecordRequest(BinaryReader* in, RecordRequest* request) {
  const std::uint8_t kind = in->GetU8();
  if (kind > static_cast<std::uint8_t>(RecordRequest::Kind::kInsert)) {
    return Status::InvalidArgument("unknown record request kind");
  }
  request->kind = static_cast<RecordRequest::Kind>(kind);
  request->entity = in->GetU64();
  request->expected_version = in->GetU64();
  // Size-checked before allocation (a row length larger than the payload
  // fails without sizing the vector).
  if (!in->GetSizedBytes(&request->row)) {
    return Status::InvalidArgument("malformed record request");
  }
  return Status::OK();
}

void EncodeRecordReply(const Status& status,
                       const std::vector<std::uint8_t>& row, Version version,
                       BinaryWriter* out) {
  EncodeStatusPayload(status, out);
  out->PutU64(version);
  out->PutU32(static_cast<std::uint32_t>(row.size()));
  if (!row.empty()) out->PutBytes(row.data(), row.size());
}

Status DecodeRecordReply(BinaryReader* in, Status* status,
                         std::vector<std::uint8_t>* row, Version* version) {
  Status parse = DecodeStatusPayload(in, status);
  if (!parse.ok()) return parse;
  *version = in->GetU64();
  if (!in->ok() || !in->GetSizedBytes(row)) {
    return Status::InvalidArgument("malformed record reply");
  }
  return Status::OK();
}

// The EVENT_BATCH payload concatenates kEvent payloads verbatim; pin the
// entry size to the event wire format so a schema-side change can't skew
// the framing silently.
static_assert(kEventBatchEntrySize == kEventWireSize,
              "EVENT_BATCH entries are kEvent payloads");

void EncodeEventBatch(const std::vector<EventMessage>& batch,
                      BinaryWriter* out) {
  out->PutU32(static_cast<std::uint32_t>(batch.size()));
  for (const EventMessage& msg : batch) {
    AIM_DCHECK(msg.bytes.size() == kEventBatchEntrySize);
    out->PutBytes(msg.bytes.data(), kEventBatchEntrySize);
  }
}

Status DecodeEventBatch(BinaryReader* in,
                        std::vector<std::vector<std::uint8_t>>* events) {
  events->clear();
  // GetCountU32 bounds the count by the bytes present (no allocation on a
  // hostile claim); the exact-size check then rejects any trailing slack.
  const std::uint32_t n = in->GetCountU32(kEventBatchEntrySize);
  if (!in->ok() || n > kMaxEventBatchCount ||
      in->remaining() != static_cast<std::size_t>(n) * kEventBatchEntrySize) {
    return Status::InvalidArgument("malformed event batch");
  }
  events->reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::vector<std::uint8_t> event(kEventBatchEntrySize);
    if (!in->GetBytes(event.data(), kEventBatchEntrySize)) {
      return Status::InvalidArgument("malformed event batch");
    }
    events->push_back(std::move(event));
  }
  return Status::OK();
}

}  // namespace net
}  // namespace aim
