#ifndef AIM_NET_MESSAGE_H_
#define AIM_NET_MESSAGE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "aim/common/status.h"
#include "aim/common/types.h"

namespace aim {

/// Completion slot for an event submission. The submitter owns it and polls
/// (or blocks on) `done`; the storage node's ESP thread fills it in. This
/// models the synchronous ESP <-> storage interaction of the paper (§4.2)
/// without a per-request heap allocation.
struct EventCompletion {
  std::atomic<bool> done{false};
  Status status;
  std::vector<std::uint32_t> fired_rules;
  std::int64_t submit_nanos = 0;    // set by the submitter
  std::int64_t complete_nanos = 0;  // set by the ESP thread

  void Reset() {
    // relaxed: Reset must not race with an in-flight completion anyway
    // (the slot is reused only after Wait() returned).
    done.store(false, std::memory_order_relaxed);
    status = Status::OK();
    fired_rules.clear();
    submit_nanos = 0;
    complete_nanos = 0;
  }

  /// Unbounded wait — only safe when the completer provably cannot
  /// disappear (an in-process node drains its queues on Stop). Anything
  /// that waits on a *remote* peer must use WaitFor: a dropped connection
  /// means `done` may never flip.
  void Wait() const {
    while (!done.load(std::memory_order_acquire)) {
      // The ESP SLA is 10ms; yielding is plenty precise at that scale.
      std::this_thread::yield();
    }
  }

  /// Bounded wait. Returns true once completed, false when
  /// `timeout_millis` elapsed first — the slot then must NOT be reused or
  /// destroyed until the completer is known to be done with it (the TCP
  /// client guarantees this by failing the completion itself on timeout or
  /// disconnect before handing the slot back).
  bool WaitFor(std::int64_t timeout_millis) const {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_millis);
    while (!done.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::yield();
    }
    return true;
  }
};

/// Event message on the "wire" between the event dispatcher and a storage
/// node: the 64-byte serialized CDR plus an optional completion slot.
struct EventMessage {
  std::vector<std::uint8_t> bytes;
  EventCompletion* completion = nullptr;  // may be null (fire-and-forget)
};

/// Query message: serialized Query plus a reply callback receiving the
/// node's serialized PartialResult. The callback is invoked exactly once,
/// from the node's RTA coordinator thread; shutdown aborts with an empty
/// payload.
struct QueryMessage {
  std::vector<std::uint8_t> bytes;
  std::function<void(std::vector<std::uint8_t>&&)> reply;
  /// Stamped by SubmitQuery; the coordinator records queue+scan+merge time
  /// against it when it replies (aim_rta_query_latency_micros).
  std::int64_t enqueue_nanos = 0;
};

/// Record-level request against a storage node's Get/Put interface — the
/// paper's deployment option (a), where a separate ESP tier manipulates
/// Entity Records remotely (§4.2). Served by the node's ESP service threads
/// so the single-writer-per-partition discipline is preserved.
struct RecordRequest {
  enum class Kind : std::uint8_t { kGet = 0, kPut = 1, kInsert = 2 };

  Kind kind = Kind::kGet;
  EntityId entity = 0;
  std::vector<std::uint8_t> row;  // kPut / kInsert payload (record bytes)
  Version expected_version = 0;   // kPut conditional-write guard

  /// Reply: status, record bytes (kGet only) and current version. Invoked
  /// exactly once from the owning ESP service thread; shutdown replies
  /// kShutdown.
  std::function<void(Status, std::vector<std::uint8_t>&&, Version)> reply;
};

}  // namespace aim

#endif  // AIM_NET_MESSAGE_H_
