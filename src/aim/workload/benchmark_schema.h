#ifndef AIM_WORKLOAD_BENCHMARK_SCHEMA_H_
#define AIM_WORKLOAD_BENCHMARK_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "aim/schema/schema.h"

namespace aim {

/// The benchmark's window set (paper §2.1 / §5): four tumbling windows,
/// two pane-approximated sliding windows, one event-based window.
struct BenchmarkWindow {
  std::string name;
  WindowSpec spec;
};

const std::vector<BenchmarkWindow>& BenchmarkWindows();

/// Canonical indicator names used by the generated schema:
///   count groups:  number_of_<filter>_calls_<window> ("any" filter omits
///                  the filter part: number_of_calls_<window>)
///   metric groups: <filter>_<metric>_<window>_<agg> ("any" omits filter)
std::string CountIndicatorName(CallFilter filter, const std::string& window);
std::string MetricGroupPrefix(CallFilter filter, EventMetric metric,
                              const std::string& window);
std::string MetricIndicatorName(CallFilter filter, EventMetric metric,
                                const std::string& window, AggFn agg);

/// Options for the generated Analytics Matrix schema.
struct BenchmarkSchemaOptions {
  /// Full benchmark: 6 filters x 7 windows x (1 count + 3 metrics x 4 aggs)
  /// = 546 indicators, matching the paper's evaluation schema.
  bool full = true;
};

/// Builds the benchmark Analytics Matrix schema (finalized): raw profile
/// attributes (entity_id, last_event_ts, preferred_number, zip,
/// subscription_type, category, cell_value_type) plus the indicator groups,
/// with paper-style aliases registered (total_duration_this_week,
/// most_expensive_call_this_week, ...).
std::unique_ptr<Schema> MakeBenchmarkSchema(
    const BenchmarkSchemaOptions& options = {});

/// Small schema for unit tests and the quickstart example: same raw
/// attributes, one filter (any) + local, windows {today, this_week,
/// last_24h, last_10_events}, duration + cost metrics. Finalized.
std::unique_ptr<Schema> MakeCompactSchema();

}  // namespace aim

#endif  // AIM_WORKLOAD_BENCHMARK_SCHEMA_H_
