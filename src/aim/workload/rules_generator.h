#ifndef AIM_WORKLOAD_RULES_GENERATOR_H_
#define AIM_WORKLOAD_RULES_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "aim/esp/rule.h"
#include "aim/schema/schema.h"

namespace aim {

/// Generator for the benchmark's business rule set: by default 300 rules
/// with 1-10 conjuncts of 1-10 predicates each (paper §5). Predicates mix
/// indicator attributes and event fields; thresholds are drawn from
/// plausible ranges so that a small-but-nonzero fraction of events fires.
struct RulesGeneratorOptions {
  std::size_t num_rules = 300;
  std::uint64_t seed = 1234;
  std::uint32_t max_conjuncts = 10;
  std::uint32_t max_predicates = 10;
  /// Percent of predicates that test event fields instead of indicators.
  std::uint32_t event_predicate_pct = 20;
};

std::vector<Rule> MakeBenchmarkRules(const Schema& schema,
                                     const RulesGeneratorOptions& options);

/// The two hand-written rules of paper Table 2 (heavy-caller campaign and
/// phone-misuse alert), for examples and tests. Requires the paper aliases
/// (number_of_calls_today, total_cost_today, avg_duration_today).
std::vector<Rule> MakePaperTable2Rules(const Schema& schema);

}  // namespace aim

#endif  // AIM_WORKLOAD_RULES_GENERATOR_H_
