#include "aim/workload/query_workload.h"

#include "aim/common/logging.h"

namespace aim {

Query QueryWorkload::Make(int qnum) {
  const std::uint32_t id = next_id_++;
  QueryBuilder qb(schema_);
  qb.WithId(id);

  switch (qnum) {
    case 1: {
      // SELECT AVG(total_duration_this_week) FROM AnalyticsMatrix
      // WHERE number_of_local_calls_this_week > alpha;
      const std::int64_t alpha = rng_.UniformRange(0, 2);
      qb.Select(AggOp::kAvg, "total_duration_this_week")
          .Where("number_of_local_calls_this_week", CmpOp::kGt,
                 Value::Int32(static_cast<std::int32_t>(alpha)));
      break;
    }
    case 2: {
      // SELECT MAX(most_expensive_call_this_week)
      // WHERE total_number_of_calls_this_week > beta;
      const std::int64_t beta = rng_.UniformRange(2, 5);
      qb.Select(AggOp::kMax, "most_expensive_call_this_week")
          .Where("number_of_calls_this_week", CmpOp::kGt,
                 Value::Int32(static_cast<std::int32_t>(beta)));
      break;
    }
    case 3: {
      // SELECT SUM(total_cost_this_week)/SUM(total_duration_this_week)
      // GROUP BY number_of_calls_this_week LIMIT 100;
      qb.SelectSumRatio("total_cost_this_week", "total_duration_this_week")
          .GroupByAttr("number_of_calls_this_week")
          .Limit(100);
      break;
    }
    case 4: {
      // SELECT city, AVG(number_of_local_calls_this_week),
      //        SUM(total_duration_of_local_calls_this_week)
      // WHERE local calls > gamma AND local duration > delta AND zip join
      // GROUP BY city;
      const std::int64_t gamma = rng_.UniformRange(2, 10);
      const std::int64_t delta = rng_.UniformRange(20, 150);
      qb.Select(AggOp::kAvg, "number_of_local_calls_this_week")
          .Select(AggOp::kSum, "total_duration_of_local_calls_this_week")
          .Where("number_of_local_calls_this_week", CmpOp::kGt,
                 Value::Int32(static_cast<std::int32_t>(gamma)))
          .Where("total_duration_of_local_calls_this_week", CmpOp::kGt,
                 Value::Float(static_cast<float>(delta)))
          .GroupByDim("zip", dims_->region_info, dims_->region_city);
      break;
    }
    case 5: {
      // SELECT region, SUM(local cost), SUM(long-distance cost)
      // WHERE t.type = T AND c.category = CAT (via FK joins)
      // GROUP BY region;
      const std::string& t =
          dims_->subscription_types[rng_.Uniform(
              dims_->subscription_types.size())];
      const std::string& cat =
          dims_->categories[rng_.Uniform(dims_->categories.size())];
      qb.Select(AggOp::kSum, "total_cost_of_local_calls_this_week")
          .Select(AggOp::kSum, "total_cost_of_long_distance_calls_this_week")
          .WhereDimLabel("subscription_type", dims_->subscription_type,
                         dims_->subscription_type_name, t)
          .WhereDimLabel("category", dims_->category, dims_->category_name,
                         cat)
          .GroupByDim("zip", dims_->region_info, dims_->region_region);
      break;
    }
    case 6: {
      // Entity ids with the longest call today/this week, local and long
      // distance, within a specific country.
      const std::string& cty =
          dims_->countries[rng_.Uniform(dims_->countries.size())];
      qb.TopK("longest_local_call_today", /*ascending=*/false)
          .TopK("longest_local_call_this_week", false)
          .TopK("longest_long_distance_call_today", false)
          .TopK("longest_long_distance_call_this_week", false)
          .WhereDimLabel("zip", dims_->region_info, dims_->region_country,
                         cty)
          .WithEntityAttr("entity_id");
      break;
    }
    case 7: {
      // Entity id with the smallest flat rate (cost/duration this week) for
      // a specific cell value type.
      const std::string& v =
          dims_->cell_value_types[rng_.Uniform(
              dims_->cell_value_types.size())];
      qb.TopKRatio("total_cost_this_week", "total_duration_this_week",
                   /*ascending=*/true)
          .WhereDimLabel("cell_value_type", dims_->cell_value_type,
                         dims_->cell_value_type_name, v)
          .WithEntityAttr("entity_id");
      break;
    }
    default:
      AIM_CHECK_MSG(false, "query number out of range: %d", qnum);
  }

  StatusOr<Query> q = qb.Build();
  AIM_CHECK_MSG(q.ok(), "Q%d failed to build: %s", qnum,
                q.status().ToString().c_str());
  return std::move(q).value();
}

}  // namespace aim
