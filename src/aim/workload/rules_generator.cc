#include "aim/workload/rules_generator.h"

#include "aim/common/logging.h"
#include "aim/common/random.h"

namespace aim {

namespace {

/// Picks a random indicator attribute and a threshold that is selective but
/// reachable for it (counts are small integers; float indicators span the
/// metric's realistic range).
Predicate RandomIndicatorPredicate(const Schema& schema,
                                   const std::vector<std::uint16_t>& pool,
                                   Random* rng) {
  const std::uint16_t attr = pool[rng->Uniform(pool.size())];
  const Attribute& a = schema.attribute(attr);
  // Campaign-style predicates are selective: thresholds sit in the tail of
  // the indicator's distribution, whichever direction the comparison goes.
  const bool less = rng->Uniform(100) < 25;
  const CmpOp op = less ? (rng->OneIn(2) ? CmpOp::kLt : CmpOp::kLe)
                        : (rng->OneIn(2) ? CmpOp::kGt : CmpOp::kGe);
  double constant;
  if (a.type == ValueType::kInt32) {
    constant = less ? static_cast<double>(rng->Uniform(3))
                    : static_cast<double>(10 + rng->Uniform(40));
  } else if (a.agg == AggFn::kAvg) {
    constant = less ? static_cast<double>(rng->Uniform(60))
                    : static_cast<double>(1000 + rng->Uniform(2500));
  } else {
    constant = less ? static_cast<double>(rng->Uniform(500))
                    : static_cast<double>(20000 + rng->Uniform(80000));
  }
  return Predicate::OnAttr(attr, op, constant);
}

Predicate RandomEventPredicate(Random* rng) {
  switch (rng->Uniform(4)) {
    case 0:
      return Predicate::OnEvent(EventFieldId::kDuration,
                                rng->OneIn(2) ? CmpOp::kGt : CmpOp::kLt,
                                static_cast<double>(rng->Uniform(3600)));
    case 1:
      return Predicate::OnEvent(EventFieldId::kCost,
                                rng->OneIn(2) ? CmpOp::kGt : CmpOp::kLt,
                                static_cast<double>(rng->Uniform(150)) / 10.0);
    case 2:
      return Predicate::OnEvent(EventFieldId::kLongDistance, CmpOp::kEq,
                                rng->OneIn(2) ? 1.0 : 0.0);
    default:
      return Predicate::OnEvent(EventFieldId::kRoaming, CmpOp::kEq,
                                rng->OneIn(2) ? 1.0 : 0.0);
  }
}

}  // namespace

std::vector<Rule> MakeBenchmarkRules(const Schema& schema,
                                     const RulesGeneratorOptions& options) {
  Random rng(options.seed);

  // Indicator pool: all exposed indicator columns.
  std::vector<std::uint16_t> pool;
  for (std::uint16_t i = 0; i < schema.num_attributes(); ++i) {
    if (schema.attribute(i).kind == AttrKind::kIndicator) pool.push_back(i);
  }
  AIM_CHECK_MSG(!pool.empty(), "schema has no indicators");

  std::vector<Rule> rules;
  rules.reserve(options.num_rules);
  for (std::size_t r = 0; r < options.num_rules; ++r) {
    Rule rule;
    rule.id = static_cast<std::uint32_t>(r);
    rule.name = "bench_rule_" + std::to_string(r);
    rule.action = "notify_subscriber";
    const std::uint32_t conjuncts =
        1 + static_cast<std::uint32_t>(rng.Uniform(options.max_conjuncts));
    for (std::uint32_t c = 0; c < conjuncts; ++c) {
      Conjunct conj;
      const std::uint32_t preds =
          1 + static_cast<std::uint32_t>(rng.Uniform(options.max_predicates));
      for (std::uint32_t p = 0; p < preds; ++p) {
        if (rng.Uniform(100) < options.event_predicate_pct) {
          conj.predicates.push_back(RandomEventPredicate(&rng));
        } else {
          conj.predicates.push_back(
              RandomIndicatorPredicate(schema, pool, &rng));
        }
      }
      rule.conjuncts.push_back(std::move(conj));
    }
    // A third of the rules carry a firing policy (campaigns are throttled).
    if (rng.OneIn(3)) {
      rule.policy = FiringPolicy::PerWindow(
          1 + static_cast<std::uint32_t>(rng.Uniform(3)), kMillisPerDay);
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::vector<Rule> MakePaperTable2Rules(const Schema& schema) {
  std::vector<Rule> rules;
  const std::uint16_t calls_today =
      schema.FindAttribute("number_of_calls_today");
  const std::uint16_t cost_today = schema.FindAttribute("total_cost_today");
  const std::uint16_t avg_dur_today =
      schema.FindAttribute("avg_duration_today");
  AIM_CHECK(calls_today != kInvalidAttr && cost_today != kInvalidAttr &&
            avg_dur_today != kInvalidAttr);

  // Rule 1: number-of-calls-today > 20 AND total-cost-today > $100 AND
  // event.duration > 300s -> free minutes campaign.
  rules.push_back(RuleBuilder(0, "free_minutes_campaign")
                      .Where(calls_today, CmpOp::kGt, 20)
                      .And(cost_today, CmpOp::kGt, 100)
                      .AndEvent(EventFieldId::kDuration, CmpOp::kGt, 300)
                      .WithAction("inform subscriber: next 10 minutes free")
                      .WithPolicy(FiringPolicy::PerWindow(1, kMillisPerDay))
                      .Build());

  // Rule 2: number-of-calls-today > 30 AND avg duration < 10s -> phone
  // misuse alert.
  rules.push_back(RuleBuilder(1, "phone_misuse_alert")
                      .Where(calls_today, CmpOp::kGt, 30)
                      .And(avg_dur_today, CmpOp::kLt, 10)
                      .WithAction("advise subscriber: activate screen lock")
                      .WithPolicy(FiringPolicy::PerWindow(1, kMillisPerDay))
                      .Build());
  return rules;
}

}  // namespace aim
