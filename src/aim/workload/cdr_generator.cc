#include "aim/workload/cdr_generator.h"

#include "aim/common/hash.h"
#include "aim/common/logging.h"

namespace aim {

Event CdrGenerator::Next(Timestamp now) {
  Event e;
  e.caller = rng_.Uniform(options_.num_entities) + 1;
  if (rng_.Uniform(100) < options_.preferred_callee_pct) {
    e.callee = PreferredOf(e.caller, options_.num_entities);
  } else {
    e.callee = rng_.Uniform(options_.num_entities) + 1;
  }
  e.timestamp = now;
  // Durations 1..3600 s, uniform (mean ~30 min); costs scale with duration
  // and distance class; data volume is usually zero (voice call) with an
  // occasional data session.
  e.duration = static_cast<std::uint32_t>(rng_.Uniform(3600) + 1);
  if (rng_.Uniform(100) < options_.long_distance_pct) {
    e.flags |= Event::kLongDistance;
  }
  if (rng_.Uniform(100) < options_.international_pct) {
    e.flags |= Event::kInternational;
  }
  if (rng_.Uniform(100) < options_.roaming_pct) {
    e.flags |= Event::kRoaming;
  }
  const double rate = e.long_distance() ? 0.004 : 0.001;  // $/sec
  const double surcharge =
      (e.international() ? 0.5 : 0.0) + (e.roaming() ? 0.3 : 0.0);
  e.cost = static_cast<float>(e.duration * rate + surcharge);
  e.data_mb = rng_.OneIn(5)
                  ? static_cast<float>(rng_.Uniform(500)) / 10.0f
                  : 0.0f;
  e.sequence = ++sequence_;
  return e;
}

void PopulateEntityProfile(const Schema& schema, const BenchmarkDims& dims,
                           EntityId entity, std::uint64_t num_entities,
                           std::uint8_t* row) {
  RecordView rec(&schema, row);
  auto set_u64 = [&](const char* name, std::uint64_t v) {
    const std::uint16_t attr = schema.FindAttribute(name);
    if (attr != kInvalidAttr) rec.SetAs<std::uint64_t>(attr, v);
  };
  auto set_u32 = [&](const char* name, std::uint32_t v) {
    const std::uint16_t attr = schema.FindAttribute(name);
    if (attr != kInvalidAttr) rec.SetAs<std::uint32_t>(attr, v);
  };
  set_u64("entity_id", entity);
  set_u64("preferred_number",
          CdrGenerator::PreferredOf(entity, num_entities));
  // Profile fields are deterministic hashes of the entity id, so any
  // process (loader, verifier, query checker) can recompute them.
  set_u32("zip", static_cast<std::uint32_t>(Mix64(entity ^ 0x5a5a) %
                                            dims.num_zips));
  set_u32("subscription_type",
          static_cast<std::uint32_t>(Mix64(entity ^ 0x1111) %
                                     dims.num_subscription_types));
  set_u32("category", static_cast<std::uint32_t>(Mix64(entity ^ 0x2222) %
                                                 dims.num_categories));
  set_u32("cell_value_type",
          static_cast<std::uint32_t>(Mix64(entity ^ 0x3333) %
                                     dims.num_cell_value_types));
}

}  // namespace aim
