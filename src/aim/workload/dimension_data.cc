#include "aim/workload/dimension_data.h"

#include "aim/common/random.h"

namespace aim {

namespace {

std::vector<std::string> MakeLabels(const std::string& prefix,
                                    std::uint32_t n) {
  std::vector<std::string> labels;
  labels.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    labels.push_back(prefix + "_" + std::to_string(i));
  }
  return labels;
}

}  // namespace

BenchmarkDims MakeBenchmarkDims(const BenchmarkDimsOptions& options) {
  BenchmarkDims dims;
  Random rng(options.seed);

  dims.countries = MakeLabels("country", options.num_countries);
  dims.regions = MakeLabels("region", options.num_regions);
  dims.cities = MakeLabels("city", options.num_cities);
  dims.subscription_types = {"prepaid", "postpaid", "business", "family"};
  dims.subscription_types.resize(options.num_subscription_types,
                                 "subtype_x");
  for (std::uint32_t i = 4; i < options.num_subscription_types; ++i) {
    dims.subscription_types[i] = "subtype_" + std::to_string(i);
  }
  dims.categories = MakeLabels("category", options.num_categories);
  dims.cell_value_types = MakeLabels("value_type",
                                     options.num_cell_value_types);

  // RegionInfo: zip -> (city, region, country). Each city belongs to one
  // region, each region to one country, so GROUP BY city/region behaves
  // like a real geography rollup.
  {
    DimensionTable t("RegionInfo");
    dims.region_city = t.AddStringColumn("city");
    dims.region_region = t.AddStringColumn("region");
    dims.region_country = t.AddStringColumn("country");
    std::vector<std::uint32_t> city_region(options.num_cities);
    for (std::uint32_t c = 0; c < options.num_cities; ++c) {
      city_region[c] =
          static_cast<std::uint32_t>(rng.Uniform(options.num_regions));
    }
    std::vector<std::uint32_t> region_country(options.num_regions);
    for (std::uint32_t r = 0; r < options.num_regions; ++r) {
      region_country[r] =
          static_cast<std::uint32_t>(rng.Uniform(options.num_countries));
    }
    for (std::uint32_t zip = 0; zip < options.num_zips; ++zip) {
      const std::uint32_t city =
          static_cast<std::uint32_t>(rng.Uniform(options.num_cities));
      const std::uint32_t region = city_region[city];
      const std::uint32_t country = region_country[region];
      t.AddRow(zip, {},
               {dims.cities[city], dims.regions[region],
                dims.countries[country]});
    }
    dims.region_info = dims.catalog.AddTable(std::move(t));
  }

  // SubscriptionType: id -> type name.
  {
    DimensionTable t("SubscriptionType");
    dims.subscription_type_name = t.AddStringColumn("type");
    for (std::uint32_t i = 0; i < options.num_subscription_types; ++i) {
      t.AddRow(i, {}, {dims.subscription_types[i]});
    }
    dims.subscription_type = dims.catalog.AddTable(std::move(t));
  }

  // Category: id -> category name.
  {
    DimensionTable t("Category");
    dims.category_name = t.AddStringColumn("category");
    for (std::uint32_t i = 0; i < options.num_categories; ++i) {
      t.AddRow(i, {}, {dims.categories[i]});
    }
    dims.category = dims.catalog.AddTable(std::move(t));
  }

  // CellValueType: id -> value type name (Q7's parameter domain).
  {
    DimensionTable t("CellValueType");
    dims.cell_value_type_name = t.AddStringColumn("name");
    for (std::uint32_t i = 0; i < options.num_cell_value_types; ++i) {
      t.AddRow(i, {}, {dims.cell_value_types[i]});
    }
    dims.cell_value_type = dims.catalog.AddTable(std::move(t));
  }

  dims.num_zips = options.num_zips;
  dims.num_subscription_types = options.num_subscription_types;
  dims.num_categories = options.num_categories;
  dims.num_cell_value_types = options.num_cell_value_types;
  return dims;
}

}  // namespace aim
