#ifndef AIM_WORKLOAD_KPI_H_
#define AIM_WORKLOAD_KPI_H_

#include <cstdint>
#include <string>

#include "aim/common/latency_recorder.h"
#include "aim/common/types.h"
#include "aim/obs/kpi_monitor.h"  // KpiTargets lives with the live monitor

namespace aim {

/// One experiment's measured KPIs plus pass/fail against the targets.
/// Response-time KPIs are checked against the mean, matching the paper's
/// reporting ("average end-to-end response time").
struct KpiReport {
  double esp_mean_ms = 0.0;
  double esp_p99_ms = 0.0;
  double esp_throughput_eps = 0.0;
  double rta_mean_ms = 0.0;
  double rta_p99_ms = 0.0;
  double rta_throughput_qps = 0.0;
  double fresh_ms = 0.0;

  bool MeetsEsp(const KpiTargets& t) const { return esp_mean_ms <= t.t_esp_ms; }
  bool MeetsRta(const KpiTargets& t) const {
    return rta_mean_ms <= t.t_rta_ms && rta_throughput_qps >= t.f_rta_qps;
  }
  bool MeetsFreshness(const KpiTargets& t) const {
    return fresh_ms <= t.t_fresh_ms;
  }

  static KpiReport FromRecorders(const LatencyRecorder& esp,
                                 const LatencyRecorder& rta,
                                 double esp_eps, double rta_qps,
                                 double fresh_ms) {
    KpiReport r;
    r.esp_mean_ms = esp.MeanMicros() / 1e3;
    r.esp_p99_ms = esp.PercentileMicros(0.99) / 1e3;
    r.esp_throughput_eps = esp_eps;
    r.rta_mean_ms = rta.MeanMicros() / 1e3;
    r.rta_p99_ms = rta.PercentileMicros(0.99) / 1e3;
    r.rta_throughput_qps = rta_qps;
    r.fresh_ms = fresh_ms;
    return r;
  }
};

}  // namespace aim

#endif  // AIM_WORKLOAD_KPI_H_
