#ifndef AIM_WORKLOAD_QUERY_WORKLOAD_H_
#define AIM_WORKLOAD_QUERY_WORKLOAD_H_

#include <cstdint>

#include "aim/common/random.h"
#include "aim/rta/query.h"
#include "aim/workload/dimension_data.h"

namespace aim {

/// The seven parameterized RTA queries of paper Table 5. Parameters are
/// drawn uniformly at random from the paper's ranges:
///   Q1: alpha in [0,2]      Q2: beta in [2,5]
///   Q4: gamma in [2,10], delta in [20,150]
///   Q5: t in SubscriptionTypes, cat in Categories
///   Q6: cty in Countries    Q7: v in CellValueTypes
///
/// Next() draws from the uniform all-seven mix used in the paper's
/// experiments (§5.1: "query mix of all seven queries, drawn at random with
/// equal probability").
class QueryWorkload {
 public:
  QueryWorkload(const Schema* schema, const BenchmarkDims* dims,
                std::uint64_t seed)
      : schema_(schema), dims_(dims), rng_(seed) {}

  /// Builds query number `qnum` (1..7) with fresh random parameters.
  Query Make(int qnum);

  /// Uniform random pick from Q1..Q7.
  Query Next() { return Make(1 + static_cast<int>(rng_.Uniform(7))); }

  std::uint32_t queries_generated() const { return next_id_; }

 private:
  const Schema* schema_;
  const BenchmarkDims* dims_;
  Random rng_;
  std::uint32_t next_id_ = 0;
};

}  // namespace aim

#endif  // AIM_WORKLOAD_QUERY_WORKLOAD_H_
