#include "aim/workload/benchmark_schema.h"

#include "aim/common/logging.h"

namespace aim {

const std::vector<BenchmarkWindow>& BenchmarkWindows() {
  static const std::vector<BenchmarkWindow>& windows =
      *new std::vector<BenchmarkWindow>{
          {"this_hour", WindowSpec::Tumbling(kMillisPerHour)},
          {"today", WindowSpec::Today()},
          {"this_week", WindowSpec::ThisWeek()},
          {"this_month", WindowSpec::Tumbling(30 * kMillisPerDay)},
          {"last_24h", WindowSpec::Sliding(kMillisPerDay, 6)},
          {"last_7d", WindowSpec::Sliding(kMillisPerWeek, 7)},
          {"last_10_events", WindowSpec::LastNEvents(10)},
      };
  return windows;
}

std::string CountIndicatorName(CallFilter filter, const std::string& window) {
  if (filter == CallFilter::kAny) return "number_of_calls_" + window;
  return std::string("number_of_") + CallFilterName(filter) + "_calls_" +
         window;
}

std::string MetricGroupPrefix(CallFilter filter, EventMetric metric,
                              const std::string& window) {
  std::string prefix;
  if (filter != CallFilter::kAny) {
    prefix = std::string(CallFilterName(filter)) + "_";
  }
  return prefix + EventMetricName(metric) + "_" + window;
}

std::string MetricIndicatorName(CallFilter filter, EventMetric metric,
                                const std::string& window, AggFn agg) {
  return MetricGroupPrefix(filter, metric, window) + "_" + AggFnName(agg);
}

namespace {

void AddRawAttributes(Schema* schema) {
  schema->AddRawAttribute("entity_id", ValueType::kUInt64);
  schema->AddRawAttribute("last_event_ts", ValueType::kInt64);
  schema->AddRawAttribute("preferred_number", ValueType::kUInt64);
  schema->AddRawAttribute("zip", ValueType::kUInt32);
  schema->AddRawAttribute("subscription_type", ValueType::kUInt32);
  schema->AddRawAttribute("category", ValueType::kUInt32);
  schema->AddRawAttribute("cell_value_type", ValueType::kUInt32);
}

void AddIndicatorGroups(Schema* schema,
                        const std::vector<CallFilter>& filters,
                        const std::vector<BenchmarkWindow>& windows,
                        const std::vector<EventMetric>& metrics) {
  for (CallFilter filter : filters) {
    for (const BenchmarkWindow& w : windows) {
      schema->AddCountGroup(CountIndicatorName(filter, w.name), filter,
                            w.spec);
      for (EventMetric metric : metrics) {
        schema->AddMetricGroup(MetricGroupPrefix(filter, metric, w.name),
                               filter, metric, w.spec,
                               Schema::kAllMetricAggs);
      }
    }
  }
}

/// Paper-style aliases (Table 5 / Table 2 attribute names).
void AddPaperAliases(Schema* schema) {
  auto alias = [&](const std::string& alias_name, const std::string& target) {
    const std::uint16_t id = schema->FindAttribute(target);
    AIM_CHECK_MSG(id != kInvalidAttr, "alias target missing: %s",
                  target.c_str());
    Status st = schema->AddAlias(alias_name, id);
    AIM_CHECK_MSG(st.ok(), "alias failed: %s", st.ToString().c_str());
  };
  // Q1/Q2/Q3/Q7.
  alias("total_duration_this_week", "duration_this_week_sum");
  alias("most_expensive_call_this_week", "cost_this_week_max");
  alias("total_cost_this_week", "cost_this_week_sum");
  // Q4.
  alias("number_of_local_calls_this_week_alias",
        "number_of_local_calls_this_week");
  alias("total_duration_of_local_calls_this_week",
        "local_duration_this_week_sum");
  // Q5.
  alias("total_cost_of_local_calls_this_week", "local_cost_this_week_sum");
  alias("total_cost_of_long_distance_calls_this_week",
        "long_distance_cost_this_week_sum");
  // Q6 (longest calls).
  alias("longest_local_call_today", "local_duration_today_max");
  alias("longest_local_call_this_week", "local_duration_this_week_max");
  alias("longest_long_distance_call_today",
        "long_distance_duration_today_max");
  alias("longest_long_distance_call_this_week",
        "long_distance_duration_this_week_max");
  // Business rules of Table 2.
  alias("number_of_calls_today_alias", "number_of_calls_today");
  alias("total_cost_today", "cost_today_sum");
  alias("avg_duration_today", "duration_today_avg");
}

}  // namespace

std::unique_ptr<Schema> MakeBenchmarkSchema(
    const BenchmarkSchemaOptions& options) {
  auto schema = std::make_unique<Schema>();
  AddRawAttributes(schema.get());

  const std::vector<CallFilter> filters = {
      CallFilter::kAny,           CallFilter::kLocal,
      CallFilter::kLongDistance,  CallFilter::kInternational,
      CallFilter::kRoaming,       CallFilter::kPreferred,
  };
  const std::vector<EventMetric> metrics = {
      EventMetric::kDuration, EventMetric::kCost, EventMetric::kDataVolume};

  AddIndicatorGroups(schema.get(), filters, BenchmarkWindows(), metrics);
  AddPaperAliases(schema.get());

  Status st = schema->Finalize();
  AIM_CHECK_MSG(st.ok(), "benchmark schema: %s", st.ToString().c_str());
  // 6 filters x 7 windows x (1 + 3*4) = 546 indicators, the paper's count.
  AIM_CHECK_MSG(schema->num_indicators() == 546,
                "benchmark schema has %u indicators",
                schema->num_indicators());
  return schema;
}

std::unique_ptr<Schema> MakeCompactSchema() {
  auto schema = std::make_unique<Schema>();
  AddRawAttributes(schema.get());

  const std::vector<CallFilter> filters = {CallFilter::kAny,
                                           CallFilter::kLocal,
                                           CallFilter::kLongDistance};
  const std::vector<BenchmarkWindow> windows = {
      {"today", WindowSpec::Today()},
      {"this_week", WindowSpec::ThisWeek()},
      {"last_24h", WindowSpec::Sliding(kMillisPerDay, 6)},
      {"last_10_events", WindowSpec::LastNEvents(10)},
  };
  const std::vector<EventMetric> metrics = {EventMetric::kDuration,
                                            EventMetric::kCost};

  AddIndicatorGroups(schema.get(), filters, windows, metrics);

  // The compact schema still carries the aliases the example queries and
  // rules rely on.
  auto alias = [&](const std::string& a, const std::string& t) {
    (void)schema->AddAlias(a, schema->FindAttribute(t));
  };
  alias("total_duration_this_week", "duration_this_week_sum");
  alias("most_expensive_call_this_week", "cost_this_week_max");
  alias("total_cost_this_week", "cost_this_week_sum");
  alias("total_cost_today", "cost_today_sum");
  alias("avg_duration_today", "duration_today_avg");
  alias("total_duration_of_local_calls_this_week",
        "local_duration_this_week_sum");
  alias("total_cost_of_local_calls_this_week", "local_cost_this_week_sum");
  alias("total_cost_of_long_distance_calls_this_week",
        "long_distance_cost_this_week_sum");

  Status st = schema->Finalize();
  AIM_CHECK_MSG(st.ok(), "compact schema: %s", st.ToString().c_str());
  return schema;
}

}  // namespace aim
