#ifndef AIM_WORKLOAD_DIMENSION_DATA_H_
#define AIM_WORKLOAD_DIMENSION_DATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "aim/rta/dimension.h"

namespace aim {

/// The benchmark's dimension tables (paper Table 5 joins): RegionInfo
/// (zip -> city/region/country), SubscriptionType, Category, CellValueType.
/// Built deterministically from a seed; replicated at every storage node.
struct BenchmarkDims {
  DimensionCatalog catalog;

  // Table ids in `catalog`.
  std::uint16_t region_info = 0;
  std::uint16_t subscription_type = 0;
  std::uint16_t category = 0;
  std::uint16_t cell_value_type = 0;

  // Column ids within their tables.
  std::uint16_t region_city = 0;
  std::uint16_t region_region = 0;
  std::uint16_t region_country = 0;
  std::uint16_t subscription_type_name = 0;
  std::uint16_t category_name = 0;
  std::uint16_t cell_value_type_name = 0;

  // Distinct label pools for random query parameters.
  std::vector<std::string> countries;
  std::vector<std::string> regions;
  std::vector<std::string> cities;
  std::vector<std::string> subscription_types;
  std::vector<std::string> categories;
  std::vector<std::string> cell_value_types;

  // Key ranges for generating entity profiles.
  std::uint32_t num_zips = 0;
  std::uint32_t num_subscription_types = 0;
  std::uint32_t num_categories = 0;
  std::uint32_t num_cell_value_types = 0;
};

struct BenchmarkDimsOptions {
  std::uint32_t num_zips = 1000;
  std::uint32_t num_cities = 100;
  std::uint32_t num_regions = 20;
  std::uint32_t num_countries = 5;
  std::uint32_t num_subscription_types = 4;
  std::uint32_t num_categories = 5;
  std::uint32_t num_cell_value_types = 3;
  std::uint64_t seed = 42;
};

BenchmarkDims MakeBenchmarkDims(const BenchmarkDimsOptions& options = {});

}  // namespace aim

#endif  // AIM_WORKLOAD_DIMENSION_DATA_H_
