#ifndef AIM_WORKLOAD_CDR_GENERATOR_H_
#define AIM_WORKLOAD_CDR_GENERATOR_H_

#include <cstdint>

#include "aim/common/hash.h"
#include "aim/common/random.h"
#include "aim/common/types.h"
#include "aim/esp/event.h"
#include "aim/schema/record.h"
#include "aim/workload/dimension_data.h"

namespace aim {

/// Deterministic CDR event source for the benchmark. Entity ids are
/// 1..num_entities (0 is never used, so zero-initialized FK columns are
/// detectably empty). Event parameters are drawn uniformly, as specified in
/// the paper's benchmark section (§5).
class CdrGenerator {
 public:
  struct Options {
    std::uint64_t num_entities = 10000;
    std::uint64_t seed = 7;
    /// Flag probabilities (percent).
    std::uint32_t long_distance_pct = 30;
    std::uint32_t international_pct = 10;
    std::uint32_t roaming_pct = 5;
    /// Probability (percent) that the callee is the caller's preferred
    /// number (exercises the record-dependent kPreferred filter).
    std::uint32_t preferred_callee_pct = 10;
  };

  explicit CdrGenerator(const Options& options)
      : options_(options), rng_(options.seed) {}

  /// Deterministic preferred number of an entity — the profile loader and
  /// the generator agree on it without shared state.
  static EntityId PreferredOf(EntityId entity, std::uint64_t num_entities) {
    return (Mix64(entity * 0x9e3779b97f4a7c15ULL) % num_entities) + 1;
  }

  /// Produces the next event, timestamped `now`.
  Event Next(Timestamp now);

  std::uint64_t events_generated() const { return sequence_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  Random rng_;
  std::uint64_t sequence_ = 0;
};

/// Fills a zeroed row with a deterministic entity profile: entity_id,
/// preferred_number, zip, subscription_type, category, cell_value_type.
/// `row` must be schema->record_size() bytes, zero-initialized.
void PopulateEntityProfile(const Schema& schema, const BenchmarkDims& dims,
                           EntityId entity, std::uint64_t num_entities,
                           std::uint8_t* row);

}  // namespace aim

#endif  // AIM_WORKLOAD_CDR_GENERATOR_H_
