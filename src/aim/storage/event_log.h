#ifndef AIM_STORAGE_EVENT_LOG_H_
#define AIM_STORAGE_EVENT_LOG_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "aim/common/annotated_mutex.h"
#include "aim/common/binary_io.h"
#include "aim/common/status.h"
#include "aim/common/types.h"

namespace aim {

/// Per-partition append-only event log (paper §7's "logging" half of
/// incremental checkpointing + logging; docs/DURABILITY.md). The storage
/// node appends one record per ESP ProcessBatch run — the log rides the
/// batch path, so log-record granularity equals batch granularity and a
/// replayed record re-runs exactly one batch — and acknowledges events only
/// after the covering fsync. The recorded byte offset (LSN) of the log is
/// what a checkpoint header cites as its replay cursor, and what a future
/// replica would cite as its catch-up cursor (docs/NETWORKING.md).
///
/// File format (little endian):
///   magic "AIMLOG1\0" |
///   records: { payload_len u32 | crc32c(len || payload) u32 | payload }
///
/// An LSN is a plain byte offset; the first record sits at LSN 8 and a
/// record's LSN is the offset *after* it (so Sync(lsn) means "make
/// everything up to lsn durable" and a checkpoint's log_lsn is directly a
/// replay start offset). The CRC covers the length field as well as the
/// payload, so a corrupted length cannot pair with an accidentally-valid
/// checksum window.
///
/// Torn tails: a crash mid-append leaves a short or checksum-failing
/// record at the tail. Open() and Replay() stop cleanly at the first
/// invalid record; Open() additionally warns and truncates the tear so the
/// next append extends a valid prefix. A torn record was by construction
/// never acknowledged (acks happen after fsync covers the record), so
/// truncation cannot lose acknowledged work.
///
/// Group commit: Append never syncs. Sync(upto) elects the first caller as
/// the flusher for everything appended so far (CoalescingWriter's
/// elected-flusher idiom, aim/net/coalescing_writer.h): concurrent Sync
/// callers whose LSN an in-flight fsync already covers just wait for it;
/// the configurable batching *interval* lives with the caller
/// (StorageNode::DurabilityOptions::group_commit_micros), which defers
/// Sync — and the acks behind it — to coalesce more appends per fsync.
///
/// Thread contract: Append from one thread at a time (the owning ESP
/// service thread); Sync/end_lsn/durable_lsn from any thread.
class EventLog {
 public:
  using Lsn = std::uint64_t;  // byte offset into the log file

  static constexpr Lsn kHeaderSize = 8;
  /// Per-record payload cap: validated on append and on replay, so a
  /// corrupted length field is recognized as a tear without attempting a
  /// multi-gigabyte read.
  static constexpr std::uint32_t kMaxPayloadSize = 64u << 20;

  struct OpenStats {
    Lsn end = 0;                    // valid end == first append position
    std::uint64_t records = 0;      // valid records found
    bool truncated_tear = false;    // a torn tail was cut off
  };

  struct ReplayStats {
    Lsn end = 0;                // end of the valid prefix
    std::uint64_t records = 0;  // records delivered to the callback
    bool torn = false;          // invalid bytes followed the valid prefix
  };

  EventLog() = default;
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens `path` for appending, creating it (header + file + directory
  /// entry fsynced) when absent. An existing file has its whole record
  /// chain validated; a torn tail is truncated (with a warning to stderr).
  /// A file that does not start with the log magic is refused with
  /// kInvalidArgument rather than overwritten.
  StatusOr<OpenStats> Open(const std::string& path) AIM_EXCLUDES(mu_);

  /// Appends one record (not yet durable) and returns the LSN *after* it —
  /// the value to pass to Sync() to make it durable.
  StatusOr<Lsn> Append(std::span<const std::uint8_t> payload)
      AIM_EXCLUDES(mu_);

  /// Blocks until everything up to `upto` is fsynced. First caller in
  /// becomes the flusher for all appends so far; callers already covered
  /// by the in-flight fsync wait instead of issuing their own.
  Status Sync(Lsn upto) AIM_EXCLUDES(mu_);

  Lsn end_lsn() const AIM_EXCLUDES(mu_);
  Lsn durable_lsn() const AIM_EXCLUDES(mu_);

  /// Syncs and closes. Further Appends fail. Idempotent.
  Status Close() AIM_EXCLUDES(mu_);

  /// Replays `path`, delivering each valid record payload (with the LSN
  /// after it) in append order, starting at `from` (0 or kHeaderSize both
  /// mean "the beginning"; otherwise `from` must be a record boundary a
  /// checkpoint recorded). Stops cleanly at the first invalid record;
  /// `torn` reports whether bytes past the valid prefix existed. Missing
  /// file => kNotFound; `from` beyond the file => kInvalidArgument.
  static StatusOr<ReplayStats> Replay(
      const std::string& path, Lsn from,
      const std::function<void(Lsn, std::span<const std::uint8_t>)>& fn);

  /// The pure in-memory scan Replay/Open build on (also the fuzz surface):
  /// walks a complete log-file image. Never fails — corruption just ends
  /// the valid prefix.
  static ReplayStats ScanImage(
      std::span<const std::uint8_t> image, Lsn from,
      const std::function<void(Lsn, std::span<const std::uint8_t>)>& fn);

  /// Serializes one record (header + payload) into `out` — the exact bytes
  /// Append writes; used by tests and the fuzz seed generator.
  static void EncodeRecord(std::span<const std::uint8_t> payload,
                           std::vector<std::uint8_t>* out);

 private:
  Status WriteFully(Lsn offset, const std::uint8_t* data, std::size_t n)
      AIM_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar synced_cv_;
  int fd_ = -1;  // set by Open, const until Close (fsync runs unlocked)
  std::string path_;
  Lsn end_lsn_ AIM_GUARDED_BY(mu_) = 0;
  Lsn durable_lsn_ AIM_GUARDED_BY(mu_) = 0;
  bool sync_in_flight_ AIM_GUARDED_BY(mu_) = false;
  Status error_ AIM_GUARDED_BY(mu_);  // sticky: first write/fsync failure
};

// ---------------------------------------------------------------------------
// Log payload codec. A log record's payload is one of:
//   event batch:  kind u8 (=0) | count u32 | event_size u32 |
//                 count x event_size raw wire events
//   record op:    kind u8 (=1 put, =2 insert) | entity u64 |
//                 expected_version u64 | row bytes (rest of payload)
// The event batch is self-describing (event_size on the wire) so the
// storage layer does not depend on the ESP tier's wire constant.
// ---------------------------------------------------------------------------

struct LogPayloadView {
  enum class Kind : std::uint8_t {
    kEventBatch = 0,
    kRecordPut = 1,
    kRecordInsert = 2,
  };

  Kind kind = Kind::kEventBatch;
  // kEventBatch:
  std::uint32_t event_count = 0;
  std::uint32_t event_size = 0;
  std::span<const std::uint8_t> events;  // event_count * event_size bytes
  // kRecordPut / kRecordInsert:
  EntityId entity = 0;
  Version expected_version = 0;  // put precondition; 0 for insert
  std::span<const std::uint8_t> row;
};

/// Parses one record payload. The view aliases `payload` — it is valid only
/// while those bytes are. kInvalidArgument on any structural violation
/// (unknown kind, count/size mismatch, short fields).
Status DecodeLogPayload(std::span<const std::uint8_t> payload,
                        LogPayloadView* out);

/// Starts an event-batch payload; the caller appends `count` wire events of
/// `event_size` bytes each with PutBytes.
inline void EncodeEventBatchHeader(std::uint32_t count,
                                   std::uint32_t event_size,
                                   BinaryWriter* out) {
  out->PutU8(static_cast<std::uint8_t>(LogPayloadView::Kind::kEventBatch));
  out->PutU32(count);
  out->PutU32(event_size);
}

/// Serializes a complete record-op payload.
inline void EncodeRecordOpPayload(LogPayloadView::Kind kind, EntityId entity,
                                  Version expected_version,
                                  std::span<const std::uint8_t> row,
                                  BinaryWriter* out) {
  out->PutU8(static_cast<std::uint8_t>(kind));
  out->PutU64(entity);
  out->PutU64(expected_version);
  out->PutBytes(row.data(), row.size());
}

}  // namespace aim

#endif  // AIM_STORAGE_EVENT_LOG_H_
