#include "aim/storage/fs_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace aim {
namespace fs {

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open directory " + dir + ": " +
                            std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync(" + dir + "): " + std::strerror(errno));
  }
  return Status::OK();
}

std::string ParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::Internal("mkdir(" + dir + "): " + std::strerror(errno));
}

StatusOr<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such directory " + dir);
    return Status::Internal("opendir(" + dir + "): " + std::strerror(errno));
  }
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

std::size_t RemoveStaleTmpFiles(const std::string& dir) {
  StatusOr<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return 0;
  std::size_t removed = 0;
  for (const std::string& name : *names) {
    if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      if (std::remove((dir + "/" + name).c_str()) == 0) ++removed;
    }
  }
  // Make the unlinks durable too: a sweep that reappears after a crash
  // would defeat its own purpose (a stale .tmp must never be mistaken for
  // an in-flight checkpoint by a later inspection).
  if (removed > 0) (void)SyncDir(dir);
  return removed;
}

StatusOr<std::uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file " + path);
    return Status::Internal("stat(" + path + "): " + std::strerror(errno));
  }
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace fs
}  // namespace aim
