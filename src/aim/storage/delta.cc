#include "aim/storage/delta.h"

#include <cstring>

#include "aim/common/logging.h"

namespace aim {

Delta::Delta(const Schema* schema)
    : schema_(schema),
      entry_stride_((kHeaderSize + schema->record_size() + 7u) & ~std::size_t{7}),
      index_(/*initial_capacity=*/1024) {
  AIM_CHECK_MSG(schema_->finalized(), "schema must be finalized");
}

void Delta::Put(EntityId entity, const std::uint8_t* row, Version version) {
  const std::uint32_t record_size = schema_->record_size();
  std::uint32_t idx = index_.Find(entity);
  if (idx == DenseMap::kNotFound) {
    // relaxed: only this (writer) thread advances size_.
    idx = size_.load(std::memory_order_relaxed);
    if (idx / kChunkEntries >= chunks_.size()) {
      chunks_.emplace_back(new std::uint8_t[kChunkEntries * entry_stride_]);
    }
    std::uint8_t* e = EntryAt(idx);
    std::memcpy(e, &entity, sizeof(entity));
    std::memcpy(e + sizeof(EntityId), &version, sizeof(version));
    std::memcpy(e + kHeaderSize, row, record_size);
    // Publish entry bytes before the index entry and the size.
    index_.Upsert(entity, idx);
    size_.store(idx + 1, std::memory_order_release);
  } else {
    // Hot-spot path: overwrite in place (automatic compaction, §4.6).
    std::uint8_t* e = EntryAt(idx);
    std::memcpy(e + sizeof(EntityId), &version, sizeof(version));
    std::memcpy(e + kHeaderSize, row, record_size);
  }
}

const std::uint8_t* Delta::Get(EntityId entity, Version* out_version) const {
  const std::uint32_t idx = index_.Find(entity);
  if (idx == DenseMap::kNotFound) return nullptr;
  const std::uint8_t* e = EntryAt(idx);
  if (out_version != nullptr) {
    std::memcpy(out_version, e + sizeof(EntityId), sizeof(Version));
  }
  return e + kHeaderSize;
}

}  // namespace aim
