#ifndef AIM_STORAGE_DELTA_H_
#define AIM_STORAGE_DELTA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "aim/common/types.h"
#include "aim/schema/schema.h"
#include "aim/storage/dense_map.h"

namespace aim {

/// Indexed delta structure (paper §4.6): accumulates Puts between merges.
/// Implemented as a dense hash map (entity-id -> entry index) over a chunked
/// record arena. Hot-spot entities overwrite their entry in place, so the
/// delta "compacts" them automatically before the merge — the paper's
/// hot-spot-favoring property.
///
/// Concurrency contract (delta-main protocol):
///   * while ACTIVE: written and read only by the owning ESP thread;
///   * while FROZEN (being merged): read by the ESP thread (Get fallthrough)
///     and read + finally Clear()ed by the RTA thread. Clear only resets the
///     index and the write position; entry bytes stay intact until the delta
///     becomes active again, which happens after an ESP handshake — so a
///     racing ESP reader never observes reused memory.
class Delta {
 public:
  /// Arena chunks hold `kChunkEntries` records each; chunk pointers are
  /// stable (chunks are never reallocated), so readers may follow an entry
  /// index without locking.
  static constexpr std::uint32_t kChunkEntries = 1024;

  /// `schema` must be finalized and outlive the delta.
  explicit Delta(const Schema* schema);

  Delta(const Delta&) = delete;
  Delta& operator=(const Delta&) = delete;

  /// Inserts or overwrites the record for `entity`. Writer thread only.
  void Put(EntityId entity, const std::uint8_t* row, Version version);

  /// Looks up an entity. Returns nullptr if absent. The returned pointer is
  /// valid until the delta is cleared AND reactivated (see class comment).
  /// `out_version` may be null.
  const std::uint8_t* Get(EntityId entity, Version* out_version) const;

  /// Prefetch hint for the index slot a Get(entity) will probe first.
  /// Advisory only; safe from any thread that may call Get.
  void PrefetchIndex(EntityId entity) const { index_.PrefetchSlot(entity); }

  /// Number of distinct entities currently buffered.
  std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }

  /// Iterates all entries (merge step; frozen delta, RTA thread).
  /// Fn: void(EntityId, Version, const uint8_t* row).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const std::uint32_t n = size_.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint8_t* e = EntryAt(i);
      EntityId entity;
      Version version;
      std::memcpy(&entity, e, sizeof(entity));
      std::memcpy(&version, e + sizeof(EntityId), sizeof(version));
      fn(entity, version, e + kHeaderSize);
    }
  }

  /// Empties the delta (RTA thread, after merging). See class comment for
  /// why this is safe against racing ESP readers.
  void Clear() {
    index_.Clear();
    size_.store(0, std::memory_order_release);
  }

  /// Frees retired index tables; call only while the ESP thread is parked
  /// in the delta-switch handshake.
  void ReclaimRetired() { index_.ReclaimRetired(); }

  /// Bytes currently allocated by the arena (diagnostics).
  std::size_t arena_bytes() const {
    return chunks_.size() * kChunkEntries * entry_stride_;
  }

 private:
  static constexpr std::size_t kHeaderSize =
      sizeof(EntityId) + sizeof(Version);

  std::uint8_t* EntryAt(std::uint32_t idx) const {
    return chunks_[idx / kChunkEntries].get() +
           static_cast<std::size_t>(idx % kChunkEntries) * entry_stride_;
  }

  const Schema* schema_;
  std::size_t entry_stride_;
  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
  std::atomic<std::uint32_t> size_{0};
  DenseMap index_;
};

}  // namespace aim

#endif  // AIM_STORAGE_DELTA_H_
