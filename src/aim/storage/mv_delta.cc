#include "aim/storage/mv_delta.h"

#include <algorithm>
#include <cstring>

#include "aim/common/logging.h"

namespace aim {

MvDelta::MvDelta(const Schema* schema) : schema_(schema) {
  AIM_CHECK_MSG(schema_->finalized(), "schema must be finalized");
}

Status MvDelta::Begin() {
  if (txn_open_) return Status::InvalidArgument("transaction already open");
  txn_open_ = true;
  txn_writes_.clear();
  return Status::OK();
}

Status MvDelta::Write(EntityId entity, const std::uint8_t* row) {
  if (!txn_open_) return Status::InvalidArgument("no open transaction");
  // Last write of the same entity within one transaction wins.
  for (auto& [e, bytes] : txn_writes_) {
    if (e == entity) {
      std::memcpy(bytes.data(), row, schema_->record_size());
      return Status::OK();
    }
  }
  txn_writes_.emplace_back(
      entity, std::vector<std::uint8_t>(row, row + schema_->record_size()));
  return Status::OK();
}

StatusOr<MvDelta::Snapshot> MvDelta::Commit() {
  if (!txn_open_) return Status::InvalidArgument("no open transaction");
  const Snapshot commit_ts = committed_ + 1;
  for (auto& [entity, bytes] : txn_writes_) {
    std::vector<VersionEntry>& chain = chains_[entity];
    chain.push_back(VersionEntry{commit_ts, std::move(bytes)});
    ++total_versions_;
  }
  txn_writes_.clear();
  txn_open_ = false;
  // Publishing the watermark makes every write of the transaction visible
  // at once — the atomic multi-record update of §7.
  committed_ = commit_ts;
  return commit_ts;
}

void MvDelta::Rollback() {
  txn_writes_.clear();
  txn_open_ = false;
}

const std::uint8_t* MvDelta::Get(EntityId entity, Snapshot snapshot) const {
  auto it = chains_.find(entity);
  if (it == chains_.end()) return nullptr;
  const std::vector<VersionEntry>& chain = it->second;
  // Chains are append-ordered by commit_ts: binary search for the newest
  // version at or below the snapshot.
  auto pos = std::upper_bound(
      chain.begin(), chain.end(), snapshot,
      [](Snapshot s, const VersionEntry& v) { return s < v.commit_ts; });
  if (pos == chain.begin()) return nullptr;  // nothing visible yet
  return std::prev(pos)->row.data();
}

std::size_t MvDelta::Truncate(Snapshot oldest_active) {
  std::size_t dropped = 0;
  for (auto& [entity, chain] : chains_) {
    // Keep the newest version with commit_ts <= oldest_active (it is still
    // visible to the oldest snapshot) and everything newer.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (chain[i].commit_ts <= oldest_active) keep = i;
    }
    dropped += keep;
    chain.erase(chain.begin(),
                chain.begin() + static_cast<std::ptrdiff_t>(keep));
  }
  total_versions_ -= dropped;
  return dropped;
}

void MvDelta::Clear() {
  chains_.clear();
  total_versions_ = 0;
  txn_writes_.clear();
  txn_open_ = false;
}

}  // namespace aim
