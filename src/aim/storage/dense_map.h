#ifndef AIM_STORAGE_DENSE_MAP_H_
#define AIM_STORAGE_DENSE_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "aim/common/hash.h"
#include "aim/common/logging.h"
#include "aim/common/prefetch.h"
#include "aim/common/sync_provider.h"

namespace aim {

/// Open-addressing hash map from EntityId (u64) to a u32 payload, standing
/// in for Google's dense_hash_map which the paper uses for the delta (§4.6)
/// and as the ColumnMap's entity-id -> record-id index (§4.5).
///
/// Concurrency contract (exactly what delta-main needs, no more):
///   * one writer thread (Upsert/Clear/Reserve), any number of reader
///     threads (Find) — table pointer and slots are atomics, so concurrent
///     reads are never UB;
///   * a reader may miss a concurrently inserted key or still see a
///     concurrently cleared one; the delta-main Get protocol tolerates both
///     (a missed delta hit falls through to an identical merged main value);
///   * growth never frees the old table immediately: it is retired and
///     reclaimed by ReclaimRetired(), which the owner calls while readers
///     are quiesced (the ESP handshake window at delta switch).
///
/// The table-retirement publication protocol is what the sync-provider
/// parameter exists for: tests/mc/dense_map_mc_test.cc instantiates this
/// exact class with the model checker's atomics and exhaustively verifies
/// reads-vs-growth and reclaim-under-quiescence (and that reclaiming
/// *without* quiescence is caught as a use-after-free). Production uses
/// the default RealSyncProvider alias below.
///
/// Key kEmptyKey (u64 max) is reserved as the empty-slot marker; entity ids
/// never legitimately take that value.
template <typename P = RealSyncProvider>
class BasicDenseMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~0ULL;
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  explicit BasicDenseMap(std::size_t initial_capacity = 64) {
    Table* t = NewTable(NormalizeCapacity(initial_capacity));
    active_.store(t, std::memory_order_release);
  }

  BasicDenseMap(const BasicDenseMap&) = delete;
  BasicDenseMap& operator=(const BasicDenseMap&) = delete;

  /// Inserts or overwrites. Writer thread only.
  void Upsert(std::uint64_t key, std::uint32_t value) {
    AIM_DCHECK(key != kEmptyKey);
    // relaxed: only the (single) writer thread stores active_, so it reads
    // its own last store; readers use the acquire load in Find.
    Table* t = active_.load(std::memory_order_relaxed);
    if ((size_ + 1) * 10 >= t->capacity * 7) {
      GrowTo(t->capacity * 2);
      t = active_.load(std::memory_order_relaxed);  // relaxed: same-thread
    }
    AIM_DCHECK_MSG(size_ < t->capacity, "probe loop requires a free slot");
    std::size_t idx = Mix64(key) & t->mask;
    while (true) {
      std::uint64_t k = t->keys[idx].load(std::memory_order_acquire);
      if (k == key) {
        t->values[idx].store(value, std::memory_order_release);
        return;
      }
      if (k == kEmptyKey) {
        // Publish the value before the key so readers that observe the key
        // also observe a valid value.
        t->values[idx].store(value, std::memory_order_release);
        t->keys[idx].store(key, std::memory_order_release);
        ++size_;
        return;
      }
      idx = (idx + 1) & t->mask;
    }
  }

  /// Lookup; safe from any thread. Returns kNotFound if absent.
  std::uint32_t Find(std::uint64_t key) const {
    const Table* t = active_.load(std::memory_order_acquire);
    std::size_t idx = Mix64(key) & t->mask;
    while (true) {
      std::uint64_t k = t->keys[idx].load(std::memory_order_acquire);
      if (k == key) return t->values[idx].load(std::memory_order_acquire);
      if (k == kEmptyKey) return kNotFound;
      idx = (idx + 1) & t->mask;
    }
  }

  bool Contains(std::uint64_t key) const { return Find(key) != kNotFound; }

  /// Prefetch hint for the home slot of `key` — the first cache lines a
  /// subsequent Find(key) will touch. Safe from any thread (same acquire
  /// discipline as Find); purely advisory, never dereferences slot data.
  void PrefetchSlot(std::uint64_t key) const {
    const Table* t = active_.load(std::memory_order_acquire);
    const std::size_t idx = Mix64(key) & t->mask;
    AIM_PREFETCH_READ(&t->keys[idx]);
    AIM_PREFETCH_READ(&t->values[idx]);
  }

  /// Removes all entries; capacity retained. Writer thread only. Readers
  /// racing with Clear may still observe old entries until the wipe reaches
  /// them — acceptable under the delta-main protocol (see class comment).
  void Clear() {
    // relaxed: writer-thread-only operation reading its own last store.
    Table* t = active_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < t->capacity; ++i) {
      t->keys[i].store(kEmptyKey, std::memory_order_release);
    }
    size_ = 0;
  }

  /// Frees tables retired by growth. Call only while no reader can hold a
  /// reference to an old table (e.g. the ESP-blocked window at delta
  /// switch, or single-threaded phases).
  void ReclaimRetired() {
    // relaxed: caller guarantees quiescence (see contract above).
    Table* t = active_.load(std::memory_order_relaxed);
    std::erase_if(tables_, [t](const std::unique_ptr<Table>& p) {
      return p.get() != t;
    });
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const {
    return active_.load(std::memory_order_acquire)->capacity;
  }
  std::size_t retired_tables() const { return tables_.size() - 1; }

  /// Pre-sizes the table so that `n` entries fit without growth (avoids
  /// retire churn during bulk loads). Writer thread only.
  void Reserve(std::size_t n) {
    std::size_t needed = NormalizeCapacity(n * 10 / 7 + 1);
    if (needed > capacity()) GrowTo(needed);
  }

 private:
  struct Table {
    explicit Table(std::size_t cap)
        : capacity(cap),
          mask(cap - 1),
          keys(new typename P::template Atomic<std::uint64_t>[cap]),
          values(new typename P::template Atomic<std::uint32_t>[cap]) {
      for (std::size_t i = 0; i < cap; ++i) {
        // relaxed: table is private until published via active_.
        keys[i].store(kEmptyKey, std::memory_order_relaxed);
      }
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<typename P::template Atomic<std::uint64_t>[]> keys;
    std::unique_ptr<typename P::template Atomic<std::uint32_t>[]> values;
  };

  static std::size_t NormalizeCapacity(std::size_t c) {
    // Floor of 4 keeps the probe loop's free-slot guarantee at the 0.7
    // load factor; callers default to 64 (the ctor argument), so only
    // tests that ask for tiny tables — e.g. the model checker, where every
    // slot is an instrumented object — get them.
    std::size_t cap = 4;
    while (cap < c) cap <<= 1;
    AIM_DCHECK((cap & (cap - 1)) == 0);  // mask-probing needs a power of two
    return cap;
  }

  Table* NewTable(std::size_t cap) {
    tables_.push_back(std::make_unique<Table>(cap));
    return tables_.back().get();
  }

  void GrowTo(std::size_t new_cap) {
    // relaxed: (whole function) runs on the single writer thread. The old
    // table's slots were written by this thread, and the new table is
    // private until the release store of active_ below publishes it.
    Table* old = active_.load(std::memory_order_relaxed);
    AIM_DCHECK_MSG(new_cap > old->capacity, "growth must enlarge the table");
    Table* next = NewTable(new_cap);
    for (std::size_t i = 0; i < old->capacity; ++i) {
      // relaxed: reading slots this thread wrote.
      std::uint64_t k = old->keys[i].load(std::memory_order_relaxed);
      if (k == kEmptyKey) continue;
      // relaxed: reading slots this thread wrote.
      std::uint32_t v = old->values[i].load(std::memory_order_relaxed);
      std::size_t idx = Mix64(k) & next->mask;
      // relaxed: `next` is private to this thread until published below.
      while (next->keys[idx].load(std::memory_order_relaxed) != kEmptyKey) {
        idx = (idx + 1) & next->mask;
      }
      // relaxed: `next` is private to this thread until published below.
      next->values[idx].store(v, std::memory_order_relaxed);
      next->keys[idx].store(k, std::memory_order_relaxed);
    }
    // Old table stays alive in tables_ until ReclaimRetired(); concurrent
    // readers probing it simply see a stale (but previously valid) view.
    active_.store(next, std::memory_order_release);
  }

  typename P::template Atomic<Table*> active_;
  std::vector<std::unique_ptr<Table>> tables_;  // owns active + retired
  std::size_t size_ = 0;
};

/// The production instantiation (plain std::atomic slots).
using DenseMap = BasicDenseMap<>;

}  // namespace aim

#endif  // AIM_STORAGE_DENSE_MAP_H_
