#include "aim/storage/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_set>

#include "aim/common/crash_point.h"
#include "aim/storage/dense_map.h"
#include "aim/storage/fs_util.h"

namespace aim {
namespace checkpoint {

namespace {
constexpr char kMagicV1[8] = {'A', 'I', 'M', 'C', 'K', 'P', 'T', '1'};
constexpr char kMagicV2[8] = {'A', 'I', 'M', 'C', 'K', 'P', 'T', '2'};

/// Validation pass shared by full and delta restore: every entity id must
/// be readable, must not be the dense-map empty-slot sentinel, and must be
/// unique within the file (the writer emits each visible entity exactly
/// once). Runs off Peek so the reader's cursor stays at the first record.
Status ValidateRecordIds(const BinaryReader& in, std::uint64_t count,
                         std::uint64_t stride,
                         std::unordered_set<EntityId>* ids) {
  ids->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t* p = in.Peek(i * stride, sizeof(EntityId));
    if (p == nullptr) return Status::InvalidArgument("truncated checkpoint");
    EntityId entity;
    std::memcpy(&entity, p, sizeof(entity));
    if (entity == DenseMap::kEmptyKey) {
      return Status::InvalidArgument("checkpoint entity id reserved");
    }
    if (!ids->insert(entity).second) {
      return Status::InvalidArgument("duplicate entity in checkpoint");
    }
  }
  return Status::OK();
}

/// Serializes header fields + records; shared by the v1 and v2 writers.
/// Single pass with a backpatched count — see Write's comment.
template <typename ForEach>
Status WriteRecords(const Schema& schema, BinaryWriter* out,
                    ForEach&& for_each) {
  const std::size_t count_offset = out->size();
  out->PutU64(0);  // placeholder, patched below
  std::uint64_t count = 0;
  for_each([&](EntityId entity, Version version, const std::uint8_t* row) {
    out->PutU64(entity);
    out->PutU64(version);
    out->PutBytes(row, schema.record_size());
    ++count;
  });
  out->PatchU64(count_offset, count);
  return Status::OK();
}

}  // namespace

Status DecodeCheckpointHeader(BinaryReader* in, CheckpointHeader* out) {
  char magic[8];
  if (!in->GetBytes(magic, sizeof(magic))) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  if (std::memcmp(magic, kMagicV1, sizeof(magic)) == 0) {
    out->version = 1;
  } else if (std::memcmp(magic, kMagicV2, sizeof(magic)) == 0) {
    out->version = 2;
  } else {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  out->record_size = in->GetU32();
  if (!in->ok() || out->record_size == 0) {
    return Status::InvalidArgument("bad checkpoint record size");
  }
  out->kind = CheckpointHeader::Kind::kFull;
  out->epoch = 0;
  out->base_epoch = 0;
  out->log_lsn = 0;
  if (out->version == 2) {
    const std::uint8_t kind = in->GetU8();
    out->epoch = in->GetU64();
    out->base_epoch = in->GetU64();
    out->log_lsn = in->GetU64();
    if (!in->ok() || kind > 1) {
      return Status::InvalidArgument("bad checkpoint header");
    }
    out->kind = static_cast<CheckpointHeader::Kind>(kind);
    // Chain sanity: a full image bases on nothing; a delta must cite a
    // strictly older epoch (a self- or forward-referencing delta could
    // otherwise loop chain recovery).
    if (out->kind == CheckpointHeader::Kind::kFull && out->base_epoch != 0) {
      return Status::InvalidArgument("full checkpoint with a base epoch");
    }
    if (out->kind == CheckpointHeader::Kind::kDelta &&
        out->base_epoch >= out->epoch) {
      return Status::InvalidArgument("delta checkpoint base not older");
    }
  }
  // Checked count: each record is exactly 16 + record_size bytes, and the
  // announced count is validated against the bytes actually present before
  // anything is allocated or inserted — a 4 GiB count claimed by a 100-byte
  // checkpoint fails right here, without the 4 GiB. (GetCountU64 divides
  // instead of multiplying, so a hostile count cannot overflow either.)
  const std::uint64_t stride = 16u + out->record_size;
  out->count = in->GetCountU64(stride);
  if (!in->ok()) return Status::InvalidArgument("truncated checkpoint");
  return Status::OK();
}

Status Write(const DeltaMainStore& store, std::uint16_t entity_attr,
             BinaryWriter* out) {
  const Schema& schema = store.schema();
  if (entity_attr >= schema.num_attributes()) {
    return Status::InvalidArgument("entity attribute out of range");
  }
  out->PutBytes(kMagicV1, sizeof(kMagicV1));
  out->PutU32(schema.record_size());

  // Single pass: serialize the payload directly and backpatch the header
  // count afterwards. Two ForEachVisible passes (count, then payload) would
  // let a concurrent merge or ESP write slip between them and make the
  // header disagree with the payload — a checkpoint that fails, or worse
  // silently misparses, on restore. With one pass the count always matches
  // what was serialized. Snapshot consistency across *records* is still the
  // caller's job: quiesce the writers for a point-in-time image; under a
  // live ESP feed the checkpoint is structurally valid but each record is
  // captured at the instant the pass visited it.
  return WriteRecords(schema, out, [&](auto&& fn) {
    store.ForEachVisible(entity_attr, fn);
  });
}

Status WriteV2(const DeltaMainStore& store, std::uint16_t entity_attr,
               const CheckpointHeader& header, BinaryWriter* out) {
  const Schema& schema = store.schema();
  if (entity_attr >= schema.num_attributes()) {
    return Status::InvalidArgument("entity attribute out of range");
  }
  const bool delta = header.kind == CheckpointHeader::Kind::kDelta;
  if (delta ? header.base_epoch >= header.epoch : header.base_epoch != 0) {
    return Status::InvalidArgument("inconsistent checkpoint chain fields");
  }
  out->PutBytes(kMagicV2, sizeof(kMagicV2));
  out->PutU32(schema.record_size());
  out->PutU8(static_cast<std::uint8_t>(header.kind));
  out->PutU64(header.epoch);
  out->PutU64(header.base_epoch);
  out->PutU64(header.log_lsn);
  const std::uint64_t since = delta ? header.base_epoch : 0;
  return WriteRecords(schema, out, [&](auto&& fn) {
    store.ForEachVisibleSince(entity_attr, since, fn);
  });
}

Status Restore(BinaryReader* in, DeltaMainStore* store) {
  const Schema& schema = store->schema();
  CheckpointHeader header;
  Status st = DecodeCheckpointHeader(in, &header);
  if (!st.ok()) return st;
  if (header.record_size != schema.record_size()) {
    return Status::InvalidArgument("checkpoint record size mismatch");
  }
  const std::uint64_t stride = 16u + header.record_size;
  const bool delta = header.kind == CheckpointHeader::Kind::kDelta;
  if (delta) {
    // Deltas apply between restores, before any live writes: the in-memory
    // deltas must be empty so the upserts land in main unshadowed.
    if (store->delta_size() != 0 || store->frozen_size() != 0) {
      return Status::Conflict("delta restore with buffered writes");
    }
  } else if (store->main_records() != 0 || store->delta_size() != 0) {
    return Status::Conflict("restore target is not empty");
  }
  // Validation pass before the first insert — the restore stays
  // all-or-nothing per file: a malformed checkpoint never leaves the store
  // partially populated. The set is bounded by `count`, which the header
  // checks bound by the input size.
  std::unordered_set<EntityId> ids;
  st = ValidateRecordIds(*in, header.count, stride, &ids);
  if (!st.ok()) return st;
  // Capacity check: for a full image every record is an insert; for a
  // delta only the entities the store does not already hold are.
  std::uint64_t inserts = header.count;
  if (delta) {
    inserts = 0;
    for (const EntityId id : ids) {
      if (!store->Exists(id)) ++inserts;
    }
  }
  if (store->main_records() + inserts > store->main_capacity()) {
    return Status::InvalidArgument("checkpoint exceeds store capacity");
  }
  std::vector<std::uint8_t> row(header.record_size);
  for (std::uint64_t i = 0; i < header.count; ++i) {
    const EntityId entity = in->GetU64();
    const Version version = in->GetU64();
    if (!in->GetBytes(row.data(), header.record_size)) {
      return Status::InvalidArgument("truncated checkpoint");
    }
    st = delta ? store->BulkUpsertWithVersion(entity, row.data(), version)
               : store->BulkInsertWithVersion(entity, row.data(), version);
    if (!st.ok()) return st;  // unreachable after validation; belt-and-braces
  }
  if (!in->ok()) return Status::InvalidArgument("truncated checkpoint");
  return Status::OK();
}

Status CommitFileAtomic(const std::string& path,
                        const std::vector<std::uint8_t>& bytes) {
  // Write-temp / fsync / rename / fsync-dir: a crash at any point leaves
  // either the previous file at `path` untouched or the complete new one —
  // never a truncated file shadowing a good one. The file fsync before the
  // rename orders the data blocks ahead of the metadata update; the
  // directory fsync after it makes the rename itself durable (without it
  // the new directory entry can vanish in a crash even though the data
  // survived — the classic rename-without-dirsync hole).
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + tmp);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  AIM_CRASH_POINT("checkpoint.pre_fsync");
  const bool flushed = written == bytes.size() && std::fflush(f) == 0 &&
                       ::fsync(::fileno(f)) == 0;
  const int closed = std::fclose(f);
  if (!flushed || closed != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  AIM_CRASH_POINT("checkpoint.post_fsync_pre_rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  AIM_CRASH_POINT("checkpoint.post_rename_pre_dirsync");
  Status st = fs::SyncDir(fs::ParentDir(path));
  if (!st.ok()) {
    // The rename happened but is not durably committed; no tmp remains.
    // Callers must not advance their chain state on this error.
    return st;
  }
  return Status::OK();
}

Status WriteToFile(const DeltaMainStore& store, std::uint16_t entity_attr,
                   const std::string& path) {
  BinaryWriter writer;
  Status st = Write(store, entity_attr, &writer);
  if (!st.ok()) return st;
  return CommitFileAtomic(path, writer.buffer());
}

Status WriteToFileV2(const DeltaMainStore& store, std::uint16_t entity_attr,
                     const CheckpointHeader& header, const std::string& path) {
  BinaryWriter writer;
  Status st = WriteV2(store, entity_attr, header, &writer);
  if (!st.ok()) return st;
  return CommitFileAtomic(path, writer.buffer());
}

Status RestoreFromFile(const std::string& path, DeltaMainStore* store) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("cannot stat " + path);
  }
  if (size == 0) {
    // An empty file is "no checkpoint yet", not corruption: recovery
    // cold-starts from it exactly like from a missing file.
    std::fclose(f);
    return Status::NotFound("empty checkpoint file " + path);
  }
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) return Status::Internal("short read from " + path);
  BinaryReader reader(buf);
  return Restore(&reader, store);
}

}  // namespace checkpoint
}  // namespace aim
