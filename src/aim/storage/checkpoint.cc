#include "aim/storage/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace aim {
namespace checkpoint {

namespace {
constexpr char kMagic[8] = {'A', 'I', 'M', 'C', 'K', 'P', 'T', '1'};
}  // namespace

Status Write(const DeltaMainStore& store, std::uint16_t entity_attr,
             BinaryWriter* out) {
  const Schema& schema = store.schema();
  if (entity_attr >= schema.num_attributes()) {
    return Status::InvalidArgument("entity attribute out of range");
  }
  out->PutBytes(kMagic, sizeof(kMagic));
  out->PutU32(schema.record_size());

  // Two-pass: count first (the header needs it), then payload.
  std::uint64_t count = 0;
  store.ForEachVisible(entity_attr,
                       [&](EntityId, Version, const std::uint8_t*) {
                         ++count;
                       });
  out->PutU64(count);
  store.ForEachVisible(
      entity_attr, [&](EntityId entity, Version version,
                       const std::uint8_t* row) {
        out->PutU64(entity);
        out->PutU64(version);
        out->PutBytes(row, schema.record_size());
      });
  return Status::OK();
}

Status Restore(BinaryReader* in, DeltaMainStore* store) {
  const Schema& schema = store->schema();
  if (store->main_records() != 0 || store->delta_size() != 0) {
    return Status::Conflict("restore target is not empty");
  }
  char magic[8];
  if (!in->GetBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  const std::uint32_t record_size = in->GetU32();
  if (record_size != schema.record_size()) {
    return Status::InvalidArgument("checkpoint record size mismatch");
  }
  const std::uint64_t count = in->GetU64();
  std::vector<std::uint8_t> row(record_size);
  for (std::uint64_t i = 0; i < count; ++i) {
    const EntityId entity = in->GetU64();
    const Version version = in->GetU64();
    if (!in->GetBytes(row.data(), record_size)) {
      return Status::InvalidArgument("truncated checkpoint");
    }
    Status st = store->BulkInsertWithVersion(entity, row.data(), version);
    if (!st.ok()) return st;
  }
  if (!in->ok()) return Status::InvalidArgument("truncated checkpoint");
  return Status::OK();
}

Status WriteToFile(const DeltaMainStore& store, std::uint16_t entity_attr,
                   const std::string& path) {
  BinaryWriter writer;
  Status st = Write(store, entity_attr, &writer);
  if (!st.ok()) return st;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  const std::size_t written =
      std::fwrite(writer.buffer().data(), 1, writer.size(), f);
  const int closed = std::fclose(f);
  if (written != writer.size() || closed != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Status RestoreFromFile(const std::string& path, DeltaMainStore* store) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("cannot stat " + path);
  }
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) return Status::Internal("short read from " + path);
  BinaryReader reader(buf);
  return Restore(&reader, store);
}

}  // namespace checkpoint
}  // namespace aim
