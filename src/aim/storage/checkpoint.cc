#include "aim/storage/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_set>

#include "aim/storage/dense_map.h"

namespace aim {
namespace checkpoint {

namespace {
constexpr char kMagic[8] = {'A', 'I', 'M', 'C', 'K', 'P', 'T', '1'};
}  // namespace

Status Write(const DeltaMainStore& store, std::uint16_t entity_attr,
             BinaryWriter* out) {
  const Schema& schema = store.schema();
  if (entity_attr >= schema.num_attributes()) {
    return Status::InvalidArgument("entity attribute out of range");
  }
  out->PutBytes(kMagic, sizeof(kMagic));
  out->PutU32(schema.record_size());

  // Single pass: serialize the payload directly and backpatch the header
  // count afterwards. Two ForEachVisible passes (count, then payload) would
  // let a concurrent merge or ESP write slip between them and make the
  // header disagree with the payload — a checkpoint that fails, or worse
  // silently misparses, on restore. With one pass the count always matches
  // what was serialized. Snapshot consistency across *records* is still the
  // caller's job: quiesce the writers for a point-in-time image; under a
  // live ESP feed the checkpoint is structurally valid but each record is
  // captured at the instant the pass visited it.
  const std::size_t count_offset = out->size();
  out->PutU64(0);  // placeholder, patched below
  std::uint64_t count = 0;
  store.ForEachVisible(
      entity_attr, [&](EntityId entity, Version version,
                       const std::uint8_t* row) {
        out->PutU64(entity);
        out->PutU64(version);
        out->PutBytes(row, schema.record_size());
        ++count;
      });
  out->PatchU64(count_offset, count);
  return Status::OK();
}

Status Restore(BinaryReader* in, DeltaMainStore* store) {
  const Schema& schema = store->schema();
  if (store->main_records() != 0 || store->delta_size() != 0) {
    return Status::Conflict("restore target is not empty");
  }
  char magic[8];
  if (!in->GetBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  const std::uint32_t record_size = in->GetU32();
  if (!in->ok() || record_size != schema.record_size()) {
    return Status::InvalidArgument("checkpoint record size mismatch");
  }
  // Checked count: each record is exactly 16 + record_size bytes, and the
  // announced count is validated against the bytes actually present before
  // anything is allocated or inserted — a 4 GiB count claimed by a 100-byte
  // checkpoint fails right here, without the 4 GiB. (GetCountU64 divides
  // instead of multiplying, so a hostile count cannot overflow either.)
  const std::uint64_t stride = 16u + record_size;
  const std::uint64_t count = in->GetCountU64(stride);
  if (!in->ok()) return Status::InvalidArgument("truncated checkpoint");
  if (count > store->main_capacity()) {
    return Status::InvalidArgument("checkpoint exceeds store capacity");
  }
  // Validation pass before the first insert: entity ids must be unique and
  // none may be the dense-map empty-slot sentinel (a fuzzed checkpoint can
  // claim any id; inserting the sentinel would corrupt the entity index).
  // Checking everything up front keeps the restore all-or-nothing — a
  // malformed checkpoint always leaves the store empty, never partially
  // populated. The set is bounded by `count`, which the checks above bound
  // by both the input size and the store capacity.
  {
    std::unordered_set<EntityId> seen;
    seen.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint8_t* p = in->Peek(i * stride, sizeof(EntityId));
      if (p == nullptr) return Status::InvalidArgument("truncated checkpoint");
      EntityId entity;
      std::memcpy(&entity, p, sizeof(entity));
      if (entity == DenseMap::kEmptyKey) {
        return Status::InvalidArgument("checkpoint entity id reserved");
      }
      if (!seen.insert(entity).second) {
        return Status::InvalidArgument("duplicate entity in checkpoint");
      }
    }
  }
  std::vector<std::uint8_t> row(record_size);
  for (std::uint64_t i = 0; i < count; ++i) {
    const EntityId entity = in->GetU64();
    const Version version = in->GetU64();
    if (!in->GetBytes(row.data(), record_size)) {
      return Status::InvalidArgument("truncated checkpoint");
    }
    Status st = store->BulkInsertWithVersion(entity, row.data(), version);
    if (!st.ok()) return st;  // unreachable after validation; belt-and-braces
  }
  if (!in->ok()) return Status::InvalidArgument("truncated checkpoint");
  return Status::OK();
}

Status WriteToFile(const DeltaMainStore& store, std::uint16_t entity_attr,
                   const std::string& path) {
  BinaryWriter writer;
  Status st = Write(store, entity_attr, &writer);
  if (!st.ok()) return st;
  // Write-temp / fsync / rename: a crash at any point leaves either the
  // previous checkpoint at `path` untouched or the complete new one —
  // never a truncated file shadowing a good checkpoint. The fsync before
  // the rename is what makes the rename a commit point: without it the
  // kernel may order the metadata update ahead of the data blocks.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + tmp);
  const std::size_t written =
      std::fwrite(writer.buffer().data(), 1, writer.size(), f);
  const bool flushed = written == writer.size() && std::fflush(f) == 0 &&
                       ::fsync(::fileno(f)) == 0;
  const int closed = std::fclose(f);
  if (!flushed || closed != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status RestoreFromFile(const std::string& path, DeltaMainStore* store) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("cannot stat " + path);
  }
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) return Status::Internal("short read from " + path);
  BinaryReader reader(buf);
  return Restore(&reader, store);
}

}  // namespace checkpoint
}  // namespace aim
