#ifndef AIM_STORAGE_MV_DELTA_H_
#define AIM_STORAGE_MV_DELTA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "aim/common/status.h"
#include "aim/common/types.h"
#include "aim/schema/schema.h"

namespace aim {

/// Multi-versioned delta — the paper's §7 future-work sketch: "making the
/// delta multi-versioned seems sufficient" to (a) serve as a building block
/// for general OLTP/OLAP engines on top of the Get/Put/Scan store (TELL)
/// and (b) let ESP update several Entity Records atomically.
///
/// Each entity keeps a small version chain ordered by commit timestamp.
/// Readers open a snapshot (the current commit watermark) and see, for
/// every entity, the newest version with commit_ts <= snapshot. Writers
/// group writes into transactions: all writes of one transaction become
/// visible atomically when Commit() advances the watermark — the
/// multi-record atomicity the single-versioned delta cannot give.
///
/// Single-writer / many-reader, like the plain Delta: one ESP thread calls
/// Begin/Write/Commit; readers call Get with a snapshot obtained from
/// LatestSnapshot(). Truncate(oldest_active) garbage-collects versions no
/// live snapshot can reach (the merge step would call this after folding
/// the newest committed versions into the main).
class MvDelta {
 public:
  using Snapshot = std::uint64_t;

  explicit MvDelta(const Schema* schema);

  MvDelta(const MvDelta&) = delete;
  MvDelta& operator=(const MvDelta&) = delete;

  // ------------------------------------------------------------------
  // Writer side.
  // ------------------------------------------------------------------

  /// Starts a transaction. Only one may be open at a time (single writer).
  Status Begin();

  /// Buffers a record image for `entity` in the open transaction.
  Status Write(EntityId entity, const std::uint8_t* row);

  /// Atomically publishes every buffered write. Returns the new snapshot.
  StatusOr<Snapshot> Commit();

  /// Discards the open transaction.
  void Rollback();

  /// Single-record convenience (one-write transaction).
  Status Put(EntityId entity, const std::uint8_t* row) {
    Status st = Begin();
    if (!st.ok()) return st;
    st = Write(entity, row);
    if (!st.ok()) {
      Rollback();
      return st;
    }
    return Commit().status();
  }

  // ------------------------------------------------------------------
  // Reader side.
  // ------------------------------------------------------------------

  /// The newest committed snapshot (0 = nothing committed yet).
  Snapshot LatestSnapshot() const { return committed_; }

  /// Newest version of `entity` visible at `snapshot`; nullptr if the
  /// entity has no visible version in the delta (fall through to main).
  const std::uint8_t* Get(EntityId entity, Snapshot snapshot) const;

  // ------------------------------------------------------------------
  // Maintenance.
  // ------------------------------------------------------------------

  /// Visits the newest committed version of every entity (the images a
  /// merge step would fold into the main).
  /// Fn: void(EntityId, Snapshot commit_ts, const uint8_t* row).
  template <typename Fn>
  void ForEachNewest(Fn&& fn) const {
    for (const auto& [entity, chain] : chains_) {
      if (chain.empty()) continue;
      const VersionEntry& newest = chain.back();
      fn(entity, newest.commit_ts, newest.row.data());
    }
  }

  /// Drops versions that no snapshot >= `oldest_active` can see: for each
  /// entity, every version older than the newest one with
  /// commit_ts <= oldest_active. Returns the number of versions dropped.
  std::size_t Truncate(Snapshot oldest_active);

  /// Removes everything (post-merge reset).
  void Clear();

  std::size_t num_entities() const { return chains_.size(); }
  std::size_t total_versions() const { return total_versions_; }

 private:
  struct VersionEntry {
    Snapshot commit_ts;
    std::vector<std::uint8_t> row;
  };

  const Schema* schema_;
  std::unordered_map<EntityId, std::vector<VersionEntry>> chains_;
  std::size_t total_versions_ = 0;

  Snapshot committed_ = 0;
  bool txn_open_ = false;
  std::vector<std::pair<EntityId, std::vector<std::uint8_t>>> txn_writes_;
};

}  // namespace aim

#endif  // AIM_STORAGE_MV_DELTA_H_
