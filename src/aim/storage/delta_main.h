#ifndef AIM_STORAGE_DELTA_MAIN_H_
#define AIM_STORAGE_DELTA_MAIN_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "aim/common/status.h"
#include "aim/common/types.h"
#include "aim/obs/freshness_tracer.h"
#include "aim/obs/histogram.h"
#include "aim/obs/metric.h"
#include "aim/storage/column_map.h"
#include "aim/storage/delta.h"
#include "aim/storage/swap_handshake.h"

namespace aim {

/// Differential-updates store for one data partition (paper §3.1, §4.6 and
/// Appendix A): a ColumnMap main plus two pre-allocated deltas that swap
/// roles at each merge.
///
/// Thread roles (enforced by convention, as in the paper):
///   * exactly one ESP thread calls EspCheckpoint / Get / Put / Insert;
///   * exactly one RTA thread calls SwitchDeltas / MergeStep and scans
///     main() between them;
///   * BulkInsert / anything else only before the threads start.
///
/// Get follows Algorithm 3 (active delta, then frozen delta while a merge
/// is in flight, then main); Put follows Algorithm 4 (active delta). The
/// delta switch runs inside the epoch-based writer-quiescence handshake —
/// extracted to SwapHandshake (swap_handshake.h) so the exact production
/// protocol is also what the model checker explores (tests/mc/): the RTA
/// thread announces intent by advancing the epoch to an odd value, the ESP
/// thread acknowledges by copying that exact epoch and parks, the RTA
/// thread swaps the delta pointers inside that window and releases by
/// advancing the epoch to the next even value — the only moment the ESP
/// thread is ever blocked, and it lasts a pointer swap, not a merge. See
/// SwapHandshake's header comment for why epochs and not the paper's two
/// booleans (the boolean protocol's dangling-acknowledgement interleaving
/// bug, which tests/mc/handshake_mc_test.cc refutes mechanically and
/// tests/stress/delta_swap_stress_test.cc hammers statistically).
class DeltaMainStore {
 public:
  struct Options {
    std::uint32_t bucket_size = ColumnMap::kDefaultBucketSize;
    std::uint64_t max_records = 1u << 20;
  };

  /// Optional always-on instrumentation (docs/OBSERVABILITY.md). All
  /// pointers may be null and must outlive the store. The tracer hooks run
  /// at the protocol's own synchronization points: OnWrite on the ESP
  /// thread after a successful delta write, OnSwap inside the
  /// writer-quiescent swap window, OnPublish when MergeStep makes the
  /// frozen delta scan-visible — so the traced t_fresh is exact, not
  /// inferred.
  struct StoreMetrics {
    Counter* records_merged = nullptr;   // cumulative rows folded into main
    Counter* merges = nullptr;           // completed merge steps
    AtomicHistogram* merge_duration_micros = nullptr;
    Gauge* frozen_delta_records = nullptr;  // delta size at each switch
    Gauge* merge_epoch = nullptr;           // == merge_epoch()
    FreshnessTracer* tracer = nullptr;
  };

  DeltaMainStore(const Schema* schema, const Options& options);

  DeltaMainStore(const DeltaMainStore&) = delete;
  DeltaMainStore& operator=(const DeltaMainStore&) = delete;

  const Schema& schema() const { return *schema_; }

  // ------------------------------------------------------------------
  // ESP side (single designated thread).
  // ------------------------------------------------------------------

  /// Algorithm 7, lines 3-5: acknowledge and wait out a pending delta
  /// switch. Call once before each Get/Put request (the storage node's ESP
  /// service loop does this), and periodically while idle. See
  /// SwapHandshake::WriterCheckpoint for the protocol.
  void EspCheckpoint() { handshake_.WriterCheckpoint(); }

  /// Algorithm 3: copies the entity's current record (row format,
  /// schema().record_size() bytes) and its version for a later conditional
  /// write. Returns kNotFound for unknown entities.
  Status Get(EntityId entity, std::uint8_t* out_row,
             Version* out_version) const;

  /// Point read of a single attribute (same lookup path as Get).
  StatusOr<Value> GetAttribute(EntityId entity, std::uint16_t attr) const;

  /// Prefetch hints for a Get(entity) that the ESP thread will issue a few
  /// events from now (group prefetching for ProcessBatch). PrefetchIndex
  /// warms the hash-index slots along the Get fallthrough (active delta,
  /// frozen delta while merging, main); PrefetchRecord additionally warms
  /// the record bytes once the indexes are likely cached —
  /// `max_main_lines` caps the per-record hint count against the main's
  /// column-per-line layout. Both are advisory only and touch exactly the
  /// structures Get may read, under the same thread contract as Get.
  void PrefetchIndex(EntityId entity) const {
    ActiveDelta()->PrefetchIndex(entity);
    if (merging_.load(std::memory_order_acquire)) {
      FrozenDelta()->PrefetchIndex(entity);
    }
    main_->PrefetchIndex(entity);
  }
  void PrefetchRecord(EntityId entity, std::uint32_t max_main_lines) const;

  /// Algorithm 4 + conditional write (paper footnote 8): installs `row` for
  /// an existing entity iff its current version equals `expected_version`;
  /// returns kConflict otherwise (caller restarts the single-row
  /// transaction).
  Status Put(EntityId entity, const std::uint8_t* row,
             Version expected_version);

  /// Creates a new entity through the delta. Returns kConflict if it
  /// already exists.
  Status Insert(EntityId entity, const std::uint8_t* row);

  bool Exists(EntityId entity) const;

  // ------------------------------------------------------------------
  // Load phase (single-threaded).
  // ------------------------------------------------------------------

  /// Inserts directly into main, bypassing the delta (initial population).
  Status BulkInsert(EntityId entity, const std::uint8_t* row);

  /// BulkInsert preserving an explicit version (checkpoint restore).
  Status BulkInsertWithVersion(EntityId entity, const std::uint8_t* row,
                               Version version);

  /// Upsert directly into main (incremental-checkpoint restore: a delta
  /// image overwrites the base image of an entity that already exists, and
  /// inserts entities created since the base). Same single-threaded load
  /// phase contract as BulkInsert.
  Status BulkUpsertWithVersion(EntityId entity, const std::uint8_t* row,
                               Version version);

  // ------------------------------------------------------------------
  // RTA side (the partition's scan thread).
  // ------------------------------------------------------------------

  /// Algorithm 6: freezes the current delta and redirects Puts to the other
  /// pre-allocated one. If `esp_attached` was never signalled, the swap is
  /// performed without the handshake (single-threaded and test usage).
  void SwitchDeltas();

  /// Applies the frozen delta to main in place, then empties it. Must be
  /// preceded by SwitchDeltas(). Returns the number of records merged.
  std::size_t MergeStep();

  /// Convenience: SwitchDeltas + MergeStep (used where scan interleaving
  /// does not matter, e.g. tests).
  std::size_t Merge() {
    SwitchDeltas();
    return MergeStep();
  }

  /// The scannable main. During a scan step the RTA thread may read it
  /// freely; the merge step is the only writer.
  const ColumnMap& main() const { return *main_; }

  bool merging() const { return merging_.load(std::memory_order_acquire); }

  /// Number of completed MergeStep() calls. Strictly monotone; the debug
  /// invariant layer checks it never observes a regression.
  std::uint64_t merge_epoch() const {
    // relaxed: a plain monotone counter for stats/invariants; readers need
    // no ordering with the merged data itself.
    return merge_epoch_.load(std::memory_order_relaxed);
  }

  /// Entities buffered in the active delta (freshness metric).
  std::size_t delta_size() const {
    return ActiveDelta()->size();
  }
  std::size_t frozen_size() const { return FrozenDelta()->size(); }

  /// Total records visible (main + new entities still in deltas is not
  /// tracked exactly; this is the main's count, used for scan sizing).
  std::uint64_t main_records() const { return main_->num_records(); }
  /// Fixed capacity of the main store (bulk-load admission checks).
  std::uint64_t main_capacity() const { return main_->max_records(); }

  /// Visits every visible record once (checkpointing; caller must quiesce
  /// all threads). Delta entries are visited with their current image;
  /// main records shadowed by a delta entry are skipped. `entity_attr` is
  /// the raw attribute carrying the entity id in the row format.
  /// Fn: void(EntityId, Version, const uint8_t* row).
  template <typename Fn>
  void ForEachVisible(std::uint16_t entity_attr, Fn&& fn) const {
    ForEachVisibleSince(entity_attr, /*base_epoch=*/0, std::forward<Fn>(fn));
  }

  /// ForEachVisible restricted to what an incremental checkpoint since
  /// checkpoint epoch `base_epoch` must persist: every current delta entry
  /// (not yet folded into any checkpointed bucket) plus the main records of
  /// buckets dirtied by a merge or load after epoch `base_epoch` was
  /// captured. `base_epoch == 0` disables the filter (full image). Same
  /// quiescence contract as ForEachVisible; the bucket stamps are written
  /// by the merge path on the RTA thread, which is also the checkpointing
  /// thread (docs/DURABILITY.md, "Dirty-bucket tracking").
  template <typename Fn>
  void ForEachVisibleSince(std::uint16_t entity_attr, std::uint64_t base_epoch,
                           Fn&& fn) const {
    ActiveDelta()->ForEach(
        [&](EntityId e, Version v, const std::uint8_t* row) { fn(e, v, row); });
    if (merging_.load(std::memory_order_acquire)) {
      FrozenDelta()->ForEach(
          [&](EntityId e, Version v, const std::uint8_t* row) {
            if (ActiveDelta()->Get(e, nullptr) == nullptr) fn(e, v, row);
          });
    }
    const Attribute& ea = schema_->attribute(entity_attr);
    std::vector<std::uint8_t> row(schema_->record_size());
    const std::uint64_t n = main_->num_records();
    const std::uint64_t bucket_size = main_->bucket_size();
    for (std::uint64_t lo = 0; lo < n; lo += bucket_size) {
      if (base_epoch != 0 &&
          bucket_stamp_[lo / bucket_size] <= base_epoch) {
        continue;  // bucket unchanged since the base checkpoint
      }
      const std::uint64_t hi = std::min(n, lo + bucket_size);
      for (std::uint64_t id = lo; id < hi; ++id) {
        main_->MaterializeRow(static_cast<RecordId>(id), row.data());
        EntityId entity;
        std::memcpy(&entity, row.data() + ea.row_offset, sizeof(entity));
        if (ActiveDelta()->Get(entity, nullptr) != nullptr) continue;
        if (merging_.load(std::memory_order_acquire) &&
            FrozenDelta()->Get(entity, nullptr) != nullptr) {
          continue;
        }
        fn(entity, main_->version(static_cast<RecordId>(id)), row.data());
      }
    }
  }

  /// Epoch the *next* checkpoint of this store will carry. Starts at 1;
  /// advanced by the checkpoint writer after a successful commit, reset by
  /// recovery to chain-tip + 1. Read/written on the checkpointing (RTA)
  /// thread only — plain fields, same contract as the bucket stamps.
  std::uint64_t next_checkpoint_epoch() const { return next_ckpt_epoch_; }
  void set_next_checkpoint_epoch(std::uint64_t epoch) {
    next_ckpt_epoch_ = epoch;
  }

  /// Runs `fn` inside the ESP writer-quiescence window (the same handshake
  /// SwitchDeltas uses). While `fn` runs the single ESP writer is parked,
  /// so the visible state is a point-in-time cut — this is where a live
  /// checkpoint serializes its image. Caller is the partition's RTA thread
  /// (the handshake supports one exclusive requester); must not be called
  /// while a merge is in flight with work still frozen.
  template <typename Fn>
  void RunQuiesced(Fn&& fn) {
    handshake_.RunExclusive(std::forward<Fn>(fn));
  }

  /// Marks that a live ESP thread participates in the handshake. The
  /// storage node sets this when its ESP service loop starts.
  void set_esp_attached(bool attached) {
    handshake_.set_writer_attached(attached);
  }

  /// Attaches instrumentation. Call before the ESP/RTA threads start (the
  /// hook pointers are read unsynchronized on the hot paths).
  void AttachMetrics(const StoreMetrics& metrics) { metrics_ = metrics; }

 private:
  /// The swap itself; runs inside the quiescent window (or single-threaded).
  void DoSwap() {
    // relaxed: active_idx_ is only ever stored by this (RTA) thread, and
    // the ESP thread cannot be reading it here — it is parked in the
    // handshake (or detached).
    const std::uint32_t cur = active_idx_.load(std::memory_order_relaxed);
    active_idx_.store(1 - cur, std::memory_order_release);
    merging_.store(true, std::memory_order_release);
    // Toggle the freshness window inside the quiescent window too: the
    // ESP thread cannot be mid-stamp here, so every OnWrite stamp lands
    // in the window whose delta actually received the write.
    if (metrics_.tracer != nullptr) metrics_.tracer->OnSwap();
    // No reader can hold a stale table reference here: reclaim hash tables
    // retired by growth since the last switch.
    deltas_[0]->ReclaimRetired();
    deltas_[1]->ReclaimRetired();
    main_->ReclaimRetired();
  }

  Delta* ActiveDelta() const {
    return deltas_[active_idx_.load(std::memory_order_acquire)].get();
  }
  Delta* FrozenDelta() const {
    return deltas_[1 - active_idx_.load(std::memory_order_acquire)].get();
  }

  /// Current version of an entity along the Get path (0 if unknown).
  Version CurrentVersion(EntityId entity, bool* found) const;

  /// Stamps the bucket holding `id` with the next checkpoint epoch — every
  /// path that mutates main bytes calls this (merge, bulk load, upsert).
  void StampBucket(RecordId id) {
    bucket_stamp_[id / main_->bucket_size()] = next_ckpt_epoch_;
  }

  const Schema* schema_;
  std::unique_ptr<ColumnMap> main_;
  std::unique_ptr<Delta> deltas_[2];
  std::atomic<std::uint32_t> active_idx_{0};
  std::atomic<bool> merging_{false};
  std::atomic<std::uint64_t> merge_epoch_{0};

  // Dirty-bucket stamps for incremental checkpoints: stamp[b] is the
  // next_ckpt_epoch_ current when bucket b's main bytes last changed.
  // Plain (non-atomic) by the thread contract in ForEachVisibleSince's
  // comment: writer and reader are the same RTA/load thread.
  std::vector<std::uint64_t> bucket_stamp_;
  std::uint64_t next_ckpt_epoch_ = 1;

  // Appendix A handshake (epoch formulation), shared with the model
  // checker via the SwapHandshake template — see swap_handshake.h.
  SwapHandshake<> handshake_;

  StoreMetrics metrics_;
};

}  // namespace aim

#endif  // AIM_STORAGE_DELTA_MAIN_H_
