#ifndef AIM_STORAGE_DELTA_MAIN_H_
#define AIM_STORAGE_DELTA_MAIN_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "aim/common/status.h"
#include "aim/common/types.h"
#include "aim/storage/column_map.h"
#include "aim/storage/delta.h"

namespace aim {

/// Differential-updates store for one data partition (paper §3.1, §4.6 and
/// Appendix A): a ColumnMap main plus two pre-allocated deltas that swap
/// roles at each merge.
///
/// Thread roles (enforced by convention, as in the paper):
///   * exactly one ESP thread calls EspCheckpoint / Get / Put / Insert;
///   * exactly one RTA thread calls SwitchDeltas / MergeStep and scans
///     main() between them;
///   * BulkInsert / anything else only before the threads start.
///
/// Get follows Algorithm 3 (active delta, then frozen delta while a merge
/// is in flight, then main); Put follows Algorithm 4 (active delta). The
/// delta switch implements the two-flag handshake of Algorithms 6/7 with an
/// epoch counter instead of raw booleans: the RTA thread announces intent by
/// advancing swap_epoch_ to an odd value, the ESP thread acknowledges by
/// copying that exact epoch into esp_ack_ and parks, the RTA thread swaps
/// the delta pointers inside that window and releases by advancing the
/// epoch to the next even value — the only moment the ESP thread is ever
/// blocked, and it lasts a pointer swap, not a merge.
///
/// Why epochs and not the paper's two booleans: with plain flags, a parked
/// ESP thread that re-raises its "waiting" flag while the RTA thread is
/// tearing the handshake down can leave a *dangling* acknowledgement — the
/// next SwitchDeltas then observes it, skips the wait, and swaps against an
/// unparked writer (a sequentially-consistent interleaving bug, not a
/// memory-ordering one; tests/stress/delta_swap_stress_test.cc reproduces
/// it against the boolean protocol). Tagging each acknowledgement with the
/// epoch it answers makes stale acks inert: the RTA thread only proceeds on
/// an ack that names the round it is currently running.
class DeltaMainStore {
 public:
  struct Options {
    std::uint32_t bucket_size = ColumnMap::kDefaultBucketSize;
    std::uint64_t max_records = 1u << 20;
  };

  DeltaMainStore(const Schema* schema, const Options& options);

  DeltaMainStore(const DeltaMainStore&) = delete;
  DeltaMainStore& operator=(const DeltaMainStore&) = delete;

  const Schema& schema() const { return *schema_; }

  // ------------------------------------------------------------------
  // ESP side (single designated thread).
  // ------------------------------------------------------------------

  /// Algorithm 7, lines 3-5: acknowledge and wait out a pending delta
  /// switch. Call once before each Get/Put request (the storage node's ESP
  /// service loop does this), and periodically while idle.
  ///
  /// The acknowledgement is (re-)issued inside the wait loop, not once
  /// before it: if the RTA thread starts the *next* switch while this
  /// thread is still parked in the previous one, it re-reads the new odd
  /// epoch and acks that round too — no deadlock. A stale ack from an
  /// earlier round can never unpark the RTA thread, because the RTA thread
  /// waits for the ack to equal its own odd epoch.
  ///
  /// Ordering: the acquire load of swap_epoch_ pairs with the release store
  /// in SwitchDeltas after DoSwap, so once this thread observes the even
  /// epoch it also observes the swapped delta pointers. No seq_cst is
  /// needed: unlike a Dekker/store-buffer pattern, neither side proceeds on
  /// the *absence* of the other's write — each waits for a positive,
  /// epoch-tagged value.
  void EspCheckpoint() {
    std::uint64_t e = swap_epoch_.load(std::memory_order_acquire);
    int spins = 0;
    while (e & 1) {  // odd: a switch is in progress
      esp_ack_.store(e, std::memory_order_release);
      CpuRelax(++spins);
      e = swap_epoch_.load(std::memory_order_acquire);
    }
  }

  /// Algorithm 3: copies the entity's current record (row format,
  /// schema().record_size() bytes) and its version for a later conditional
  /// write. Returns kNotFound for unknown entities.
  Status Get(EntityId entity, std::uint8_t* out_row,
             Version* out_version) const;

  /// Point read of a single attribute (same lookup path as Get).
  StatusOr<Value> GetAttribute(EntityId entity, std::uint16_t attr) const;

  /// Algorithm 4 + conditional write (paper footnote 8): installs `row` for
  /// an existing entity iff its current version equals `expected_version`;
  /// returns kConflict otherwise (caller restarts the single-row
  /// transaction).
  Status Put(EntityId entity, const std::uint8_t* row,
             Version expected_version);

  /// Creates a new entity through the delta. Returns kConflict if it
  /// already exists.
  Status Insert(EntityId entity, const std::uint8_t* row);

  bool Exists(EntityId entity) const;

  // ------------------------------------------------------------------
  // Load phase (single-threaded).
  // ------------------------------------------------------------------

  /// Inserts directly into main, bypassing the delta (initial population).
  Status BulkInsert(EntityId entity, const std::uint8_t* row);

  /// BulkInsert preserving an explicit version (checkpoint restore).
  Status BulkInsertWithVersion(EntityId entity, const std::uint8_t* row,
                               Version version);

  // ------------------------------------------------------------------
  // RTA side (the partition's scan thread).
  // ------------------------------------------------------------------

  /// Algorithm 6: freezes the current delta and redirects Puts to the other
  /// pre-allocated one. If `esp_attached` was never signalled, the swap is
  /// performed without the handshake (single-threaded and test usage).
  void SwitchDeltas();

  /// Applies the frozen delta to main in place, then empties it. Must be
  /// preceded by SwitchDeltas(). Returns the number of records merged.
  std::size_t MergeStep();

  /// Convenience: SwitchDeltas + MergeStep (used where scan interleaving
  /// does not matter, e.g. tests).
  std::size_t Merge() {
    SwitchDeltas();
    return MergeStep();
  }

  /// The scannable main. During a scan step the RTA thread may read it
  /// freely; the merge step is the only writer.
  const ColumnMap& main() const { return *main_; }

  bool merging() const { return merging_.load(std::memory_order_acquire); }

  /// Number of completed MergeStep() calls. Strictly monotone; the debug
  /// invariant layer checks it never observes a regression.
  std::uint64_t merge_epoch() const {
    // relaxed: a plain monotone counter for stats/invariants; readers need
    // no ordering with the merged data itself.
    return merge_epoch_.load(std::memory_order_relaxed);
  }

  /// Entities buffered in the active delta (freshness metric).
  std::size_t delta_size() const {
    return ActiveDelta()->size();
  }
  std::size_t frozen_size() const { return FrozenDelta()->size(); }

  /// Total records visible (main + new entities still in deltas is not
  /// tracked exactly; this is the main's count, used for scan sizing).
  std::uint64_t main_records() const { return main_->num_records(); }

  /// Visits every visible record once (checkpointing; caller must quiesce
  /// all threads). Delta entries are visited with their current image;
  /// main records shadowed by a delta entry are skipped. `entity_attr` is
  /// the raw attribute carrying the entity id in the row format.
  /// Fn: void(EntityId, Version, const uint8_t* row).
  template <typename Fn>
  void ForEachVisible(std::uint16_t entity_attr, Fn&& fn) const {
    ActiveDelta()->ForEach(
        [&](EntityId e, Version v, const std::uint8_t* row) { fn(e, v, row); });
    if (merging_.load(std::memory_order_acquire)) {
      FrozenDelta()->ForEach(
          [&](EntityId e, Version v, const std::uint8_t* row) {
            if (ActiveDelta()->Get(e, nullptr) == nullptr) fn(e, v, row);
          });
    }
    const Attribute& ea = schema_->attribute(entity_attr);
    std::vector<std::uint8_t> row(schema_->record_size());
    const std::uint64_t n = main_->num_records();
    for (std::uint64_t id = 0; id < n; ++id) {
      main_->MaterializeRow(static_cast<RecordId>(id), row.data());
      EntityId entity;
      std::memcpy(&entity, row.data() + ea.row_offset, sizeof(entity));
      if (ActiveDelta()->Get(entity, nullptr) != nullptr) continue;
      if (merging_.load(std::memory_order_acquire) &&
          FrozenDelta()->Get(entity, nullptr) != nullptr) {
        continue;
      }
      fn(entity, main_->version(static_cast<RecordId>(id)), row.data());
    }
  }

  /// Marks that a live ESP thread participates in the handshake. The
  /// storage node sets this when its ESP service loop starts.
  void set_esp_attached(bool attached) {
    esp_attached_.store(attached, std::memory_order_release);
  }

 private:
  /// Spin helper: pause for short waits, fall back to yielding once the
  /// other side clearly is not running (mandatory on oversubscribed cores,
  /// where pure pause-spinning livelocks the handshake until the OS
  /// preempts us).
  static void CpuRelax(int spins) {
    if (spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      // Not an ordering requirement — merely a spin-throttle standing in
      // for the pause instruction on architectures without one.
      std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
    } else {
      std::this_thread::yield();
    }
  }

  /// The swap itself; runs inside the quiescent window (or single-threaded).
  void DoSwap() {
    // relaxed: active_idx_ is only ever stored by this (RTA) thread, and
    // the ESP thread cannot be reading it here — it is parked in the
    // handshake (or detached).
    const std::uint32_t cur = active_idx_.load(std::memory_order_relaxed);
    active_idx_.store(1 - cur, std::memory_order_release);
    merging_.store(true, std::memory_order_release);
    // No reader can hold a stale table reference here: reclaim hash tables
    // retired by growth since the last switch.
    deltas_[0]->ReclaimRetired();
    deltas_[1]->ReclaimRetired();
    main_->ReclaimRetired();
  }

  Delta* ActiveDelta() const {
    return deltas_[active_idx_.load(std::memory_order_acquire)].get();
  }
  Delta* FrozenDelta() const {
    return deltas_[1 - active_idx_.load(std::memory_order_acquire)].get();
  }

  /// Current version of an entity along the Get path (0 if unknown).
  Version CurrentVersion(EntityId entity, bool* found) const;

  const Schema* schema_;
  std::unique_ptr<ColumnMap> main_;
  std::unique_ptr<Delta> deltas_[2];
  std::atomic<std::uint32_t> active_idx_{0};
  std::atomic<bool> merging_{false};
  std::atomic<std::uint64_t> merge_epoch_{0};

  // Appendix A handshake state (epoch formulation, see class comment).
  // swap_epoch_ odd = switch requested; esp_ack_ holds the last odd epoch
  // the ESP thread parked for.
  std::atomic<std::uint64_t> swap_epoch_{0};
  std::atomic<std::uint64_t> esp_ack_{0};
  std::atomic<bool> esp_attached_{false};
};

}  // namespace aim

#endif  // AIM_STORAGE_DELTA_MAIN_H_
