#include "aim/storage/column_map.h"

#include <cstring>

#include "aim/common/logging.h"
#include "aim/common/prefetch.h"

namespace aim {

ColumnMap::ColumnMap(const Schema* schema, std::uint32_t bucket_size,
                     std::uint64_t max_records)
    : schema_(schema),
      bucket_size_(bucket_size),
      max_records_(max_records),
      index_(/*initial_capacity=*/1024) {
  AIM_CHECK_MSG(schema_->finalized(), "schema must be finalized");
  AIM_CHECK_MSG(bucket_size_ > 0, "bucket_size must be positive");

  // Column layout inside a bucket block: attributes in schema order, each
  // occupying width * bucket_size bytes, then the row-major state area.
  col_offset_.resize(schema_->num_attributes());
  std::uint64_t off = 0;
  for (std::uint16_t i = 0; i < schema_->num_attributes(); ++i) {
    col_offset_[i] = static_cast<std::uint32_t>(off);
    off += ValueTypeSize(schema_->attribute(i).type) * bucket_size_;
  }
  state_offset_ = static_cast<std::uint32_t>(off);
  state_stride_ = schema_->state_area_size();
  bucket_bytes_ = off + static_cast<std::uint64_t>(state_stride_) *
                            bucket_size_;

  bucket_slots_ = static_cast<std::uint32_t>(
      (max_records_ + bucket_size_ - 1) / bucket_size_);
  if (bucket_slots_ == 0) bucket_slots_ = 1;
  buckets_.reset(new std::atomic<Bucket*>[bucket_slots_]);
  for (std::uint32_t i = 0; i < bucket_slots_; ++i) {
    // relaxed: single-threaded construction; no reader exists yet.
    buckets_[i].store(nullptr, std::memory_order_relaxed);
  }
  index_.Reserve(std::min<std::uint64_t>(max_records_, 1u << 20));
}

ColumnMap::~ColumnMap() {
  for (std::uint32_t i = 0; i < bucket_slots_; ++i) {
    // relaxed: destruction requires external quiescence anyway.
    delete buckets_[i].load(std::memory_order_relaxed);
  }
}

StatusOr<RecordId> ColumnMap::Insert(EntityId entity, const std::uint8_t* row,
                                     Version version) {
  if (entity == DenseMap::kEmptyKey) {
    // The index's empty-slot sentinel: inserting it would corrupt probing.
    // Reachable from untrusted bytes (checkpoint restore, record requests),
    // so this is a Status, not a DCHECK.
    return Status::InvalidArgument("entity id reserved");
  }
  if (index_.Contains(entity)) {
    return Status::Conflict("entity already present in main");
  }
  // relaxed: num_records_ is only advanced by this (single) writer thread;
  // reading our own last store needs no ordering.
  const std::uint64_t id64 = num_records_.load(std::memory_order_relaxed);
  if (id64 >= max_records_) {
    return Status::Capacity("ColumnMap full");
  }
  const RecordId id = static_cast<RecordId>(id64);
  const std::uint32_t b = id / bucket_size_;
  Bucket* bucket = GetBucket(b);
  if (bucket == nullptr) {
    auto fresh = std::make_unique<Bucket>();
    fresh->data.reset(new std::uint8_t[bucket_bytes_]());
    fresh->versions.reset(new Version[bucket_size_]());
    bucket = fresh.release();
    buckets_[b].store(bucket, std::memory_order_release);
  }
  // Publish order: record bytes and version first, then the count, then the
  // index entry — readers that find the entity always see complete data.
  ScatterRow(id, row);
  bucket->versions[id % bucket_size_] = version;
  num_records_.store(id64 + 1, std::memory_order_release);
  index_.Upsert(entity, id);
  return id;
}

void ColumnMap::ScatterRow(RecordId id, const std::uint8_t* row) {
  AIM_DCHECK_MSG(id < max_records_, "record id out of bounds");
  const std::uint32_t b = id / bucket_size_;
  const std::uint32_t idx = id % bucket_size_;
  Bucket* bucket = GetBucket(b);
  AIM_DCHECK(bucket != nullptr);
  std::uint8_t* block = bucket->data.get();
  const std::uint16_t n = schema_->num_attributes();
  for (std::uint16_t i = 0; i < n; ++i) {
    const Attribute& a = schema_->attribute(i);
    const std::size_t w = ValueTypeSize(a.type);
    std::memcpy(block + col_offset_[i] + idx * w, row + a.row_offset, w);
  }
  if (state_stride_ > 0) {
    std::memcpy(block + state_offset_ + idx * state_stride_,
                row + schema_->state_area_offset(), state_stride_);
  }
}

void ColumnMap::MaterializeRow(RecordId id, std::uint8_t* out) const {
  AIM_DCHECK_MSG(id < num_records(), "materialize of unpublished record");
  const std::uint32_t b = id / bucket_size_;
  const std::uint32_t idx = id % bucket_size_;
  const Bucket* bucket = GetBucket(b);
  AIM_DCHECK(bucket != nullptr);
  const std::uint8_t* block = bucket->data.get();
  const std::uint16_t n = schema_->num_attributes();
  for (std::uint16_t i = 0; i < n; ++i) {
    const Attribute& a = schema_->attribute(i);
    const std::size_t w = ValueTypeSize(a.type);
    std::memcpy(out + a.row_offset, block + col_offset_[i] + idx * w, w);
  }
  if (state_stride_ > 0) {
    std::memcpy(out + schema_->state_area_offset(),
                block + state_offset_ + idx * state_stride_, state_stride_);
  }
}

void ColumnMap::PrefetchRow(RecordId id, std::uint32_t max_lines) const {
  if (id >= num_records()) return;
  const std::uint32_t b = id / bucket_size_;
  const std::uint32_t idx = id % bucket_size_;
  const Bucket* bucket = GetBucket(b);
  if (bucket == nullptr) return;
  const std::uint8_t* block = bucket->data.get();
  const std::uint16_t n = schema_->num_attributes();
  std::uint32_t lines = 0;
  for (std::uint16_t i = 0; i < n && lines < max_lines; ++i) {
    const std::size_t w = ValueTypeSize(schema_->attribute(i).type);
    AIM_PREFETCH_READ(block + col_offset_[i] + idx * w);
    ++lines;
  }
  if (state_stride_ > 0 && lines < max_lines) {
    AIM_PREFETCH_READ(block + state_offset_ + idx * state_stride_);
  }
}

Value ColumnMap::GetValue(RecordId id, std::uint16_t attr) const {
  AIM_DCHECK_MSG(id < num_records(), "read of unpublished record");
  AIM_DCHECK(attr < schema_->num_attributes());
  const std::uint32_t b = id / bucket_size_;
  const std::uint32_t idx = id % bucket_size_;
  const Bucket* bucket = GetBucket(b);
  AIM_DCHECK(bucket != nullptr);
  const Attribute& a = schema_->attribute(attr);
  const std::size_t w = ValueTypeSize(a.type);
  return Value::Load(a.type, bucket->data.get() + col_offset_[attr] + idx * w);
}

Version ColumnMap::version(RecordId id) const {
  const Bucket* bucket = GetBucket(id / bucket_size_);
  AIM_DCHECK(bucket != nullptr);
  return bucket->versions[id % bucket_size_];
}

void ColumnMap::set_version(RecordId id, Version v) {
  Bucket* bucket = GetBucket(id / bucket_size_);
  AIM_DCHECK(bucket != nullptr);
  bucket->versions[id % bucket_size_] = v;
}

ColumnMap::BucketRef ColumnMap::bucket(std::uint32_t b) const {
  const std::uint64_t total = num_records();
  BucketRef ref;
  const Bucket* bucket = GetBucket(b);
  AIM_CHECK_MSG(bucket != nullptr, "bucket %u not allocated", b);
  ref.block = bucket->data.get();
  ref.first_record = b * bucket_size_;
  AIM_DCHECK_MSG(ref.first_record < total,
                 "bucket %u past the published record count", b);
  const std::uint64_t remaining = total - ref.first_record;
  ref.count = static_cast<std::uint32_t>(
      remaining < bucket_size_ ? remaining : bucket_size_);
  return ref;
}

}  // namespace aim
