#ifndef AIM_STORAGE_CHECKPOINT_H_
#define AIM_STORAGE_CHECKPOINT_H_

#include <string>

#include "aim/common/binary_io.h"
#include "aim/common/status.h"
#include "aim/storage/delta_main.h"

namespace aim {

/// Checkpointing for a DeltaMainStore. The production AIM has incremental
/// checkpointing and zero-copy logging (paper §7); this reproduction keeps
/// the paper's measured scope (checkpoint costs excluded from benchmarks,
/// §5.1) and provides full checkpoints so a store can be persisted and
/// restored — enough to build recovery on top of the event archive.
///
/// Format (little endian):
///   magic "AIMCKPT1" | record_size u32 | num_records u64 |
///   num_records x { entity u64 | version u64 | row bytes }
///
/// Snapshot consistency: for a point-in-time image the caller quiesces the
/// store (no concurrent ESP/RTA threads) around both operations. Write is a
/// single ForEachVisible pass with a backpatched header count, so the
/// checkpoint stays *structurally* valid (count always matches the payload)
/// even if writers race it — but then each record reflects the instant the
/// pass visited it, not one cut across the store. The delta does not need
/// to be merged first: Write serializes the *visible* state (delta entries
/// shadow main images).
///
/// WriteToFile is crash-durable: it writes `path + ".tmp"`, fflush+fsyncs,
/// and renames over the target, so a crash mid-write can never replace a
/// good checkpoint with a truncated one.
namespace checkpoint {

/// Serializes the current visible state of `store`. `entity_attr` is the
/// raw attribute holding the entity id (usually "entity_id").
Status Write(const DeltaMainStore& store, std::uint16_t entity_attr,
             BinaryWriter* out);

/// Restores into an empty store (BulkInsert path). Fails with kConflict if
/// the store already has records, kInvalidArgument on format mismatch.
Status Restore(BinaryReader* in, DeltaMainStore* store);

/// File convenience wrappers (plain stdio; no <filesystem>).
Status WriteToFile(const DeltaMainStore& store, std::uint16_t entity_attr,
                   const std::string& path);
Status RestoreFromFile(const std::string& path, DeltaMainStore* store);

}  // namespace checkpoint
}  // namespace aim

#endif  // AIM_STORAGE_CHECKPOINT_H_
