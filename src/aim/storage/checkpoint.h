#ifndef AIM_STORAGE_CHECKPOINT_H_
#define AIM_STORAGE_CHECKPOINT_H_

#include <string>

#include "aim/common/binary_io.h"
#include "aim/common/status.h"
#include "aim/storage/delta_main.h"

namespace aim {

/// Checkpointing for a DeltaMainStore — now both halves of the paper's §7
/// durability sketch: full images (the original "AIMCKPT1" format, still
/// read and written unchanged) and incremental delta-since-epoch images
/// ("AIMCKPT2") that persist only the buckets dirtied since the previous
/// checkpoint, chained by epoch and carrying the event-log offset their
/// state covers (docs/DURABILITY.md).
///
/// v1 format (little endian):
///   magic "AIMCKPT1" | record_size u32 | num_records u64 |
///   num_records x { entity u64 | version u64 | row bytes }
///
/// v2 format:
///   magic "AIMCKPT2" | record_size u32 | kind u8 (0 full, 1 delta) |
///   epoch u64 | base_epoch u64 | log_lsn u64 | num_records u64 |
///   num_records x { entity u64 | version u64 | row bytes }
///
/// `epoch` names this checkpoint in the chain; a delta applies on top of
/// the checkpoint whose epoch equals its `base_epoch` (0 for a full).
/// `log_lsn` is the event-log byte offset this image covers: replaying the
/// partition's log from exactly log_lsn reproduces everything newer. The
/// same offset doubles as the catch-up cursor a replica would stream the
/// log from (docs/NETWORKING.md, scale-out).
///
/// Snapshot consistency: for a point-in-time image the caller quiesces the
/// store (DeltaMainStore::RunQuiesced parks the ESP writer) around the
/// serialize. Write is a single ForEachVisible pass with a backpatched
/// header count, so the checkpoint stays *structurally* valid even if
/// writers race it — but then each record reflects the instant the pass
/// visited it, not one cut across the store.
///
/// WriteToFile is crash-durable end to end: it writes `path + ".tmp"`,
/// fflush+fsyncs, renames over the target *and fsyncs the parent
/// directory* — the rename is only a commit point once the directory block
/// holding the new entry is durable. Every failure path removes the
/// temporary; RemoveStaleTmp sweeps any a crash still orphaned.
namespace checkpoint {

/// Parsed v1/v2 header. For v1 files version==1 and the v2-only fields are
/// zero. `kind`/`epoch`/`base_epoch`/`log_lsn` are also the write-side
/// parameters (WriteV2 serializes them verbatim).
struct CheckpointHeader {
  enum class Kind : std::uint8_t { kFull = 0, kDelta = 1 };

  std::uint32_t version = 2;  // format: 1 = AIMCKPT1, 2 = AIMCKPT2
  std::uint32_t record_size = 0;
  Kind kind = Kind::kFull;
  std::uint64_t epoch = 0;       // this checkpoint's chain epoch
  std::uint64_t base_epoch = 0;  // delta base (0 for full / v1)
  std::uint64_t log_lsn = 0;     // event-log replay cursor
  std::uint64_t count = 0;       // records in the payload
};

/// Reads and validates a v1 or v2 header, leaving `in` positioned at the
/// first record. The announced count is validated against the bytes
/// actually present (kInvalidArgument otherwise), so sizing a container by
/// `out->count` is safe.
Status DecodeCheckpointHeader(BinaryReader* in, CheckpointHeader* out);

/// Serializes the current visible state of `store` (v1 full image).
/// `entity_attr` is the raw attribute holding the entity id.
Status Write(const DeltaMainStore& store, std::uint16_t entity_attr,
             BinaryWriter* out);

/// v2 writer. `header.kind`, `epoch`, `base_epoch` and `log_lsn` are
/// serialized as given; `record_size` and `count` are filled in. A delta
/// image persists ForEachVisibleSince(header.base_epoch); a full image
/// everything visible.
Status WriteV2(const DeltaMainStore& store, std::uint16_t entity_attr,
               const CheckpointHeader& header, BinaryWriter* out);

/// Restores a checkpoint image, dispatching on the magic. Full images
/// (v1 or v2) require an empty store (kConflict otherwise) and are
/// all-or-nothing: validation runs before the first insert. Delta images
/// upsert on top of the current main (the store's deltas must be empty —
/// recovery applies them between restores, before any live writes) and are
/// equally all-or-nothing per file. kInvalidArgument on any malformed
/// input.
Status Restore(BinaryReader* in, DeltaMainStore* store);

/// File convenience wrappers (plain stdio/POSIX; no <filesystem>).
Status WriteToFile(const DeltaMainStore& store, std::uint16_t entity_attr,
                   const std::string& path);

/// v2 variant of WriteToFile (same tmp/fsync/rename/dir-fsync commit).
Status WriteToFileV2(const DeltaMainStore& store, std::uint16_t entity_attr,
                     const CheckpointHeader& header, const std::string& path);

/// kNotFound for a missing or empty file ("no checkpoint yet" — recovery
/// cold-starts), kInvalidArgument for a malformed one (corruption — do not
/// silently reinitialize), kConflict/kInternal as per Restore.
Status RestoreFromFile(const std::string& path, DeltaMainStore* store);

/// Commits `bytes` to `path` crash-atomically: write `path + ".tmp"`,
/// fsync, rename, fsync the parent directory. The temporary is removed on
/// every failure path. (Shared by WriteToFile* and the event-log tests.)
Status CommitFileAtomic(const std::string& path,
                        const std::vector<std::uint8_t>& bytes);

}  // namespace checkpoint
}  // namespace aim

#endif  // AIM_STORAGE_CHECKPOINT_H_
