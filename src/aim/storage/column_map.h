#ifndef AIM_STORAGE_COLUMN_MAP_H_
#define AIM_STORAGE_COLUMN_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "aim/common/status.h"
#include "aim/common/types.h"
#include "aim/schema/record.h"
#include "aim/schema/schema.h"
#include "aim/storage/dense_map.h"

namespace aim {

/// PAX-style main store (paper §4.5, Figure 5). Records are grouped into
/// Buckets of `bucket_size` records; inside a bucket each attribute's values
/// are stored contiguously (column-major), while the opaque group-state
/// blocks are kept row-major at the end of the bucket (they are only touched
/// record-at-a-time by Get/merge, never scanned).
///
///   bucket block = [col0 x B][col1 x B]...[colK x B][state row x B]
///
/// bucket_size = 1 degenerates into a row store; bucket_size >= number of
/// records into a pure column store — the paper's tunability argument.
///
/// A DenseMap keeps the entity-id -> record-id mapping; record ids are dense
/// and never change, so value addresses are computable (§4.5).
///
/// Concurrency: one writer (bulk load / the merging RTA thread), many
/// readers. Bucket slots are pre-allocated atomic pointers (no vector
/// growth), so readers can materialize rows while the writer appends new
/// records. Writers must scatter a new record's bytes before publishing its
/// index entry; in-place updates of existing records are only performed by
/// the merge step, whose safety is argued at the delta-main level (a record
/// being merged is still present in the frozen delta, so no reader touches
/// its main image).
class ColumnMap {
 public:
  /// Paper default: 3072 records per bucket (largest power of two whose
  /// 3 KB-record bucket fits a 10 MB L3).
  static constexpr std::uint32_t kDefaultBucketSize = 3072;

  /// `schema` must be finalized and outlive the map. `max_records` bounds
  /// capacity (bucket pointer slots are pre-allocated).
  ColumnMap(const Schema* schema, std::uint32_t bucket_size,
            std::uint64_t max_records);

  ColumnMap(const ColumnMap&) = delete;
  ColumnMap& operator=(const ColumnMap&) = delete;
  ~ColumnMap();

  const Schema& schema() const { return *schema_; }
  std::uint32_t bucket_size() const { return bucket_size_; }

  // ------------------------------------------------------------------
  // Index.
  // ------------------------------------------------------------------

  /// Record id for an entity, or kInvalidRecordId.
  RecordId Lookup(EntityId entity) const {
    std::uint32_t v = index_.Find(entity);
    return v == DenseMap::kNotFound ? kInvalidRecordId : v;
  }

  /// Prefetch hint for the index slot Lookup(entity) will probe first.
  /// Advisory only; safe from any reader thread.
  void PrefetchIndex(EntityId entity) const { index_.PrefetchSlot(entity); }

  /// Prefetch hint for the cache lines MaterializeRow(id) will gather:
  /// one line per column value plus the state block, capped at
  /// `max_lines` hints so wide schemas don't flood the prefetch queue.
  /// Advisory only; safe from any reader thread.
  void PrefetchRow(RecordId id, std::uint32_t max_lines) const;

  // ------------------------------------------------------------------
  // Writer-side operations.
  // ------------------------------------------------------------------

  /// Appends a new record (row format) for `entity`. Fails with kCapacity
  /// when max_records is reached, kConflict if the entity already exists.
  StatusOr<RecordId> Insert(EntityId entity, const std::uint8_t* row,
                            Version version);

  /// Overwrites an existing record in place (merge step).
  void ScatterRow(RecordId id, const std::uint8_t* row);

  /// Version bookkeeping for conditional writes.
  Version version(RecordId id) const;
  void set_version(RecordId id, Version v);

  /// Releases index tables retired by growth. Same quiescence contract as
  /// DenseMap::ReclaimRetired().
  void ReclaimRetired() { index_.ReclaimRetired(); }

  // ------------------------------------------------------------------
  // Reader-side operations.
  // ------------------------------------------------------------------

  /// Gathers record `id` into row format (record_size bytes).
  void MaterializeRow(RecordId id, std::uint8_t* out) const;

  /// Single-value read (fast path for point lookups of one attribute).
  Value GetValue(RecordId id, std::uint16_t attr) const;

  std::uint64_t num_records() const {
    return num_records_.load(std::memory_order_acquire);
  }
  std::uint64_t max_records() const { return max_records_; }
  std::uint32_t num_buckets() const {
    const std::uint64_t n = num_records();
    return static_cast<std::uint32_t>((n + bucket_size_ - 1) / bucket_size_);
  }

  // ------------------------------------------------------------------
  // Scan access (shared scans read columns directly).
  // ------------------------------------------------------------------

  /// Read-only view of one bucket for scan kernels.
  struct BucketRef {
    const std::uint8_t* block = nullptr;  // bucket base
    std::uint32_t count = 0;              // live records in this bucket
    std::uint32_t first_record = 0;       // record id of row 0

    /// Column base for an attribute (given the map's layout).
    const std::uint8_t* Column(const ColumnMap& map,
                               std::uint16_t attr) const {
      return block + map.col_offset_[attr];
    }
  };

  /// Bucket `b` must be < num_buckets() at the time of the call. The count
  /// is clamped to the record count observed at call time, so scans racing
  /// with appends see a consistent prefix.
  BucketRef bucket(std::uint32_t b) const;

  /// Byte offset of attribute `attr`'s column inside a bucket block.
  std::uint32_t column_offset(std::uint16_t attr) const {
    return col_offset_[attr];
  }
  /// Total bytes of one bucket block (diagnostics / memory accounting).
  std::uint64_t bucket_bytes() const { return bucket_bytes_; }

 private:
  struct Bucket {
    std::unique_ptr<std::uint8_t[]> data;
    std::unique_ptr<Version[]> versions;
  };

  Bucket* GetBucket(std::uint32_t b) const {
    AIM_DCHECK(b < bucket_slots_);
    return buckets_[b].load(std::memory_order_acquire);
  }

  const Schema* schema_;
  const std::uint32_t bucket_size_;
  const std::uint64_t max_records_;

  // Layout: per-attribute column offsets within a bucket block, then the
  // row-major state area.
  std::vector<std::uint32_t> col_offset_;
  std::uint32_t state_offset_ = 0;   // offset of state area in bucket block
  std::uint32_t state_stride_ = 0;   // schema state_area_size
  std::uint64_t bucket_bytes_ = 0;

  std::unique_ptr<std::atomic<Bucket*>[]> buckets_;
  std::uint32_t bucket_slots_ = 0;
  std::atomic<std::uint64_t> num_records_{0};

  DenseMap index_;
};

}  // namespace aim

#endif  // AIM_STORAGE_COLUMN_MAP_H_
