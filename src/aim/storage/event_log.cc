#include "aim/storage/event_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "aim/common/crash_point.h"
#include "aim/common/crc32c.h"
#include "aim/common/logging.h"
#include "aim/storage/fs_util.h"

namespace aim {

namespace {

constexpr char kLogMagic[EventLog::kHeaderSize] = {'A', 'I', 'M', 'L',
                                                   'O', 'G', '1', '\0'};
constexpr std::size_t kRecordHeaderSize = 8;  // payload_len u32 | crc u32

// CRC over the length field then the payload (see header comment).
std::uint32_t RecordCrc(std::uint32_t len, const std::uint8_t* payload) {
  std::uint32_t crc = Crc32c(&len, sizeof(len));
  return Crc32c(payload, len, crc);
}

StatusOr<std::vector<std::uint8_t>> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("cannot stat " + path);
  }
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) return Status::Internal("short read from " + path);
  return buf;
}

}  // namespace

EventLog::~EventLog() { (void)Close(); }

Status EventLog::WriteFully(Lsn offset, const std::uint8_t* data,
                            std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ::ssize_t w = ::pwrite(fd_, data + done, n - done,
                                 static_cast<::off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("pwrite(" + path_ +
                              "): " + std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
  return Status::OK();
}

StatusOr<EventLog::OpenStats> EventLog::Open(const std::string& path) {
  MutexLock lock(mu_);
  AIM_CHECK_MSG(fd_ < 0, "EventLog::Open on an already-open log");
  path_ = path;
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::Internal("open(" + path + "): " + std::strerror(errno));
  }
  struct ::stat st;
  if (::fstat(fd_, &st) != 0) {
    const Status err =
        Status::Internal("fstat(" + path + "): " + std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return err;
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);

  OpenStats stats;
  if (size < kHeaderSize) {
    // Fresh log — or a create interrupted before the header hit disk, in
    // which case nothing could have been appended (Open fsyncs the header
    // before any Append can run), so starting over loses nothing.
    stats.truncated_tear = size != 0;
    if (::ftruncate(fd_, 0) != 0) {
      const Status err =
          Status::Internal("ftruncate(" + path + "): " + std::strerror(errno));
      ::close(fd_);
      fd_ = -1;
      return err;
    }
    Status st_w = WriteFully(0, reinterpret_cast<const std::uint8_t*>(
                                    kLogMagic),
                             kHeaderSize);
    if (st_w.ok() && ::fsync(fd_) != 0) {
      st_w = Status::Internal("fsync(" + path + "): " + std::strerror(errno));
    }
    // The directory entry must be durable too, or a crash could forget the
    // log file whose records we are about to acknowledge.
    if (st_w.ok()) st_w = fs::SyncDir(fs::ParentDir(path));
    if (!st_w.ok()) {
      ::close(fd_);
      fd_ = -1;
      return st_w;
    }
    end_lsn_ = kHeaderSize;
    durable_lsn_ = kHeaderSize;
    stats.end = kHeaderSize;
    return stats;
  }

  StatusOr<std::vector<std::uint8_t>> image = ReadWholeFile(path);
  if (!image.ok()) {
    ::close(fd_);
    fd_ = -1;
    return image.status();
  }
  if (std::memcmp(image->data(), kLogMagic, kHeaderSize) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::InvalidArgument(path + " is not an AIM event log");
  }
  const ReplayStats scan =
      ScanImage(std::span<const std::uint8_t>(image->data(), image->size()),
                kHeaderSize, nullptr);
  if (scan.torn) {
    std::fprintf(stderr,
                 "aim: event log %s has a torn tail at offset %llu "
                 "(%llu of %llu bytes valid); truncating\n",
                 path.c_str(), static_cast<unsigned long long>(scan.end),
                 static_cast<unsigned long long>(scan.end),
                 static_cast<unsigned long long>(size));
    if (::ftruncate(fd_, static_cast<::off_t>(scan.end)) != 0 ||
        ::fsync(fd_) != 0) {
      const Status err =
          Status::Internal("truncate(" + path + "): " + std::strerror(errno));
      ::close(fd_);
      fd_ = -1;
      return err;
    }
    stats.truncated_tear = true;
  }
  end_lsn_ = scan.end;
  durable_lsn_ = scan.end;
  stats.end = scan.end;
  stats.records = scan.records;
  return stats;
}

StatusOr<EventLog::Lsn> EventLog::Append(std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxPayloadSize) {
    return Status::InvalidArgument("log payload exceeds size cap");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::uint8_t header[kRecordHeaderSize];
  const std::uint32_t crc = RecordCrc(len, payload.data());
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);

  MutexLock lock(mu_);
  if (fd_ < 0) return Status::Shutdown("event log closed");
  if (!error_.ok()) return error_;
  // Two writes with a kill point between them: the torn-record case the
  // durability tier injects is exactly a header without its payload.
  Status st = WriteFully(end_lsn_, header, kRecordHeaderSize);
  AIM_CRASH_POINT("event_log.mid_append");
  if (st.ok()) {
    st = WriteFully(end_lsn_ + kRecordHeaderSize, payload.data(),
                    payload.size());
  }
  if (!st.ok()) {
    // A partial append is on-disk garbage past end_lsn_; recovery treats it
    // as a tear. Poison the log so no later append writes beyond it.
    error_ = st;
    return st;
  }
  end_lsn_ += kRecordHeaderSize + payload.size();
  return end_lsn_;
}

Status EventLog::Sync(Lsn upto) {
  Lsn target = 0;
  {
    MutexLock lock(mu_);
    for (;;) {
      if (!error_.ok()) return error_;
      if (durable_lsn_ >= upto) return Status::OK();
      if (fd_ < 0) return Status::Shutdown("event log closed");
      if (!sync_in_flight_) break;
      synced_cv_.wait(lock);
    }
    AIM_CHECK_MSG(upto <= end_lsn_, "Sync past the end of the log");
    sync_in_flight_ = true;
    target = end_lsn_;
  }

  AIM_CRASH_POINT("event_log.pre_sync");
  // fsync outside the lock: appends (and their pwrites) proceed while the
  // flush is in flight — that overlap is the group-commit win.
  const int rc = ::fsync(fd_);
  const int err = errno;

  MutexLock lock(mu_);
  sync_in_flight_ = false;
  if (rc != 0) {
    error_ = Status::Internal("fsync(" + path_ + "): " + std::strerror(err));
  } else if (durable_lsn_ < target) {
    durable_lsn_ = target;
  }
  synced_cv_.notify_all();
  return error_;
}

EventLog::Lsn EventLog::end_lsn() const {
  MutexLock lock(mu_);
  return end_lsn_;
}

EventLog::Lsn EventLog::durable_lsn() const {
  MutexLock lock(mu_);
  return durable_lsn_;
}

Status EventLog::Close() {
  Lsn end;
  {
    MutexLock lock(mu_);
    if (fd_ < 0) return Status::OK();
    end = end_lsn_;
  }
  const Status st = Sync(end);
  MutexLock lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return st;
}

EventLog::ReplayStats EventLog::ScanImage(
    std::span<const std::uint8_t> image, Lsn from,
    const std::function<void(Lsn, std::span<const std::uint8_t>)>& fn) {
  ReplayStats stats;
  if (from < kHeaderSize) {
    // Scanning from the top includes the header in the validity check.
    if (image.size() < kHeaderSize ||
        std::memcmp(image.data(), kLogMagic, kHeaderSize) != 0) {
      stats.end = 0;
      stats.torn = image.size() != 0;
      return stats;
    }
    from = kHeaderSize;
  }
  std::uint64_t pos = from;
  while (pos + kRecordHeaderSize <= image.size()) {
    std::uint32_t len;
    std::uint32_t crc;
    std::memcpy(&len, image.data() + pos, 4);
    std::memcpy(&crc, image.data() + pos + 4, 4);
    if (len > kMaxPayloadSize) break;
    if (pos + kRecordHeaderSize + len > image.size()) break;
    const std::uint8_t* payload = image.data() + pos + kRecordHeaderSize;
    if (RecordCrc(len, payload) != crc) break;
    pos += kRecordHeaderSize + len;
    ++stats.records;
    if (fn) fn(pos, std::span<const std::uint8_t>(payload, len));
  }
  stats.end = pos;
  stats.torn = pos < image.size();
  return stats;
}

StatusOr<EventLog::ReplayStats> EventLog::Replay(
    const std::string& path, Lsn from,
    const std::function<void(Lsn, std::span<const std::uint8_t>)>& fn) {
  StatusOr<std::vector<std::uint8_t>> image = ReadWholeFile(path);
  if (!image.ok()) return image.status();
  if (from > image->size()) {
    return Status::InvalidArgument("replay offset beyond the end of " + path);
  }
  if (image->size() < kHeaderSize ||
      std::memcmp(image->data(), kLogMagic, kHeaderSize) != 0) {
    return Status::InvalidArgument(path + " is not an AIM event log");
  }
  return ScanImage(std::span<const std::uint8_t>(image->data(), image->size()),
                   from, fn);
}

void EventLog::EncodeRecord(std::span<const std::uint8_t> payload,
                            std::vector<std::uint8_t>* out) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = RecordCrc(len, payload.data());
  const std::size_t base = out->size();
  out->resize(base + kRecordHeaderSize + payload.size());
  std::memcpy(out->data() + base, &len, 4);
  std::memcpy(out->data() + base + 4, &crc, 4);
  std::memcpy(out->data() + base + kRecordHeaderSize, payload.data(),
              payload.size());
}

Status DecodeLogPayload(std::span<const std::uint8_t> payload,
                        LogPayloadView* out) {
  BinaryReader reader(payload.data(), payload.size());
  const std::uint8_t kind = reader.GetU8();
  if (!reader.ok()) return Status::InvalidArgument("empty log payload");
  switch (static_cast<LogPayloadView::Kind>(kind)) {
    case LogPayloadView::Kind::kEventBatch: {
      const std::uint32_t count = reader.GetU32();
      const std::uint32_t event_size = reader.GetU32();
      if (!reader.ok() || event_size == 0) {
        return Status::InvalidArgument("bad event batch header");
      }
      // Exact-size check (division first, so a hostile count cannot
      // overflow the multiply).
      if (count != reader.remaining() / event_size ||
          count * static_cast<std::uint64_t>(event_size) !=
              reader.remaining()) {
        return Status::InvalidArgument("event batch size mismatch");
      }
      out->kind = LogPayloadView::Kind::kEventBatch;
      out->event_count = count;
      out->event_size = event_size;
      out->events = payload.subspan(payload.size() - reader.remaining());
      return Status::OK();
    }
    case LogPayloadView::Kind::kRecordPut:
    case LogPayloadView::Kind::kRecordInsert: {
      const EntityId entity = reader.GetU64();
      const Version expected = reader.GetU64();
      if (!reader.ok()) return Status::InvalidArgument("short record op");
      if (reader.remaining() == 0) {
        return Status::InvalidArgument("record op without a row");
      }
      out->kind = static_cast<LogPayloadView::Kind>(kind);
      out->entity = entity;
      out->expected_version = expected;
      out->row = payload.subspan(payload.size() - reader.remaining());
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown log payload kind");
}

}  // namespace aim
