#ifndef AIM_STORAGE_FS_UTIL_H_
#define AIM_STORAGE_FS_UTIL_H_

#include <string>
#include <vector>

#include "aim/common/status.h"

namespace aim {
namespace fs {

/// POSIX directory helpers for the durability layer (no <filesystem>, same
/// policy as checkpoint.cc's stdio usage: these paths also run inside
/// crash-recovery code where we want the exact syscalls visible).

/// fsyncs the directory itself so a just-renamed or just-created entry
/// survives a power cut. A rename is only a commit point once the directory
/// block holding the new entry is durable; without this, the file's data
/// can be on disk while the name pointing at it is not.
Status SyncDir(const std::string& dir);

/// Parent directory of `path` ("." when the path has no slash).
std::string ParentDir(const std::string& path);

/// mkdir -p for a single level (creates `dir` if absent; ok if it exists).
Status EnsureDir(const std::string& dir);

/// Plain (non-recursive) listing of regular-file names in `dir`, sorted.
/// kNotFound when the directory does not exist.
StatusOr<std::vector<std::string>> ListDir(const std::string& dir);

/// Deletes every "*.tmp" file in `dir` — the startup sweep that reclaims
/// checkpoint temporaries orphaned by a crash between write and rename.
/// Returns the number removed; a missing directory removes zero.
std::size_t RemoveStaleTmpFiles(const std::string& dir);

/// Size of a regular file in bytes; kNotFound when it does not exist.
StatusOr<std::uint64_t> FileSize(const std::string& path);

}  // namespace fs
}  // namespace aim

#endif  // AIM_STORAGE_FS_UTIL_H_
