#ifndef AIM_STORAGE_SWAP_HANDSHAKE_H_
#define AIM_STORAGE_SWAP_HANDSHAKE_H_

#include <atomic>
#include <cstdint>

#include "aim/common/logging.h"
#include "aim/common/sync_provider.h"

namespace aim {

/// The epoch-based writer-quiescence handshake at the heart of the delta
/// switch (paper Algorithms 6/7, Appendix A), extracted from
/// DeltaMainStore so the exact production protocol can be instantiated
/// with the model checker's instrumented atomics (tests/mc/) as well as
/// with real ones. Two roles:
///
///   * exactly one WRITER thread (the ESP side) calls WriterCheckpoint()
///     between its operations;
///   * exactly one COORDINATOR thread (the RTA side) calls RunExclusive()
///     to execute a critical action (the delta-pointer swap) while the
///     writer is parked.
///
/// Protocol: the coordinator announces intent by advancing swap_epoch_ to
/// an odd value; the writer acknowledges by copying that exact epoch into
/// writer_ack_ and parks; the coordinator runs the action inside that
/// window and releases by advancing the epoch to the next even value —
/// the only moment the writer is ever blocked, and it lasts the action,
/// not a merge.
///
/// Why epochs and not the paper's two booleans: with plain flags, a parked
/// writer that re-raises its "waiting" flag while the coordinator is
/// tearing the handshake down can leave a *dangling* acknowledgement — the
/// next round then observes it, skips the wait, and runs the action
/// against an unparked writer (a sequentially-consistent interleaving bug,
/// not a memory-ordering one). Tagging each acknowledgement with the epoch
/// it answers makes stale acks inert: the coordinator only proceeds on an
/// ack that names the round it is currently running.
/// tests/mc/handshake_mc_test.cc proves both claims exhaustively: this
/// protocol admits no bad interleaving within the preemption bound, and
/// the boolean protocol's violation is found mechanically.
///
/// Ordering: every edge is a positive epoch-tagged value published with
/// release and consumed with acquire; neither side ever proceeds on the
/// *absence* of the other's write, so no seq_cst (Dekker-style) total
/// order is needed.
template <typename P = RealSyncProvider>
class SwapHandshake {
 public:
  SwapHandshake() = default;
  SwapHandshake(const SwapHandshake&) = delete;
  SwapHandshake& operator=(const SwapHandshake&) = delete;

  /// Writer side (Algorithm 7, lines 3-5): acknowledge and wait out a
  /// pending round. Call between writer operations and periodically while
  /// idle.
  ///
  /// The acknowledgement is (re-)issued inside the wait loop, not once
  /// before it: if the coordinator starts the *next* round while this
  /// thread is still parked in the previous one, it re-reads the new odd
  /// epoch and acks that round too — no deadlock. A stale ack from an
  /// earlier round can never unpark the coordinator, because the
  /// coordinator waits for the ack to equal its own odd epoch.
  void WriterCheckpoint() {
    std::uint64_t e = swap_epoch_.load(std::memory_order_acquire);
    int spins = 0;
    while (e & 1) {  // odd: a round is in progress
      writer_ack_.store(e, std::memory_order_release);
      P::Pause(++spins);
      e = swap_epoch_.load(std::memory_order_acquire);
    }
  }

  /// Marks that a live writer thread participates in the handshake. When
  /// detached, RunExclusive runs its action without quiescing (single-
  /// threaded and shutdown usage).
  void set_writer_attached(bool attached) {
    writer_attached_.store(attached, std::memory_order_release);
  }

  bool writer_attached() const {
    return writer_attached_.load(std::memory_order_acquire);
  }

  /// Coordinator side (Algorithm 6, epoch formulation): quiesce the
  /// writer, run `action` inside the window, release. If the writer
  /// detaches mid-wait (shutdown), the wait escapes — there is no writer
  /// left to quiesce.
  template <typename Action>
  void RunExclusive(Action&& action) {
    if (!writer_attached()) {
      action();
      return;
    }
    // relaxed: swap_epoch_ is only ever stored by this (coordinator)
    // thread; this is a same-thread read of our own counter.
    const std::uint64_t odd =
        swap_epoch_.load(std::memory_order_relaxed) + 1;
    AIM_DCHECK((odd & 1) == 1);
    swap_epoch_.store(odd, std::memory_order_release);
    int spins = 0;
    while (writer_ack_.load(std::memory_order_acquire) != odd) {
      if (!writer_attached()) {
        // The writer detached (shutdown): no writer left to quiesce.
        break;
      }
      P::Pause(++spins);
    }
    action();
    // Release pairs with the acquire load in WriterCheckpoint: once the
    // writer observes the even epoch it also observes the action's
    // effects (e.g. the swapped delta pointers).
    swap_epoch_.store(odd + 1, std::memory_order_release);
  }

 private:
  // swap_epoch_ odd = round in progress; writer_ack_ holds the last odd
  // epoch the writer parked for.
  typename P::template Atomic<std::uint64_t> swap_epoch_{0};
  typename P::template Atomic<std::uint64_t> writer_ack_{0};
  typename P::AtomicBool writer_attached_{false};
};

}  // namespace aim

#endif  // AIM_STORAGE_SWAP_HANDSHAKE_H_
