#include "aim/storage/delta_main.h"

#include <cstring>

#include "aim/common/clock.h"
#include "aim/common/logging.h"
#include "aim/common/prefetch.h"

namespace aim {

DeltaMainStore::DeltaMainStore(const Schema* schema, const Options& options)
    : schema_(schema) {
  AIM_CHECK_MSG(schema_->finalized(), "schema must be finalized");
  main_ = std::make_unique<ColumnMap>(schema, options.bucket_size,
                                      options.max_records);
  deltas_[0] = std::make_unique<Delta>(schema);
  deltas_[1] = std::make_unique<Delta>(schema);
  bucket_stamp_.assign(
      (options.max_records + options.bucket_size - 1) / options.bucket_size,
      0);
}

Status DeltaMainStore::Get(EntityId entity, std::uint8_t* out_row,
                           Version* out_version) const {
  const std::uint32_t record_size = schema_->record_size();
  // Algorithm 3: new delta (when merging, the active one is the "new"
  // delta), then the frozen one, then main.
  Version version = 0;
  const std::uint8_t* row = ActiveDelta()->Get(entity, &version);
  if (row == nullptr && merging_.load(std::memory_order_acquire)) {
    row = FrozenDelta()->Get(entity, &version);
  }
  if (row != nullptr) {
    std::memcpy(out_row, row, record_size);
    if (out_version != nullptr) *out_version = version;
    return Status::OK();
  }
  const RecordId id = main_->Lookup(entity);
  if (id == kInvalidRecordId) return Status::NotFound();
  main_->MaterializeRow(id, out_row);
  if (out_version != nullptr) *out_version = main_->version(id);
  return Status::OK();
}

StatusOr<Value> DeltaMainStore::GetAttribute(EntityId entity,
                                             std::uint16_t attr) const {
  Version version = 0;
  const std::uint8_t* row = ActiveDelta()->Get(entity, &version);
  if (row == nullptr && merging_.load(std::memory_order_acquire)) {
    row = FrozenDelta()->Get(entity, &version);
  }
  if (row != nullptr) {
    const Attribute& a = schema_->attribute(attr);
    return Value::Load(a.type, row + a.row_offset);
  }
  const RecordId id = main_->Lookup(entity);
  if (id == kInvalidRecordId) return Status::NotFound();
  return main_->GetValue(id, attr);
}

void DeltaMainStore::PrefetchRecord(EntityId entity,
                                    std::uint32_t max_main_lines) const {
  // Mirror the Get fallthrough, but issue hints instead of copies. The
  // delta Get only probes its (already prefetched) index and computes a
  // stable arena address — cheap even on a miss.
  const std::uint8_t* row = ActiveDelta()->Get(entity, nullptr);
  if (row == nullptr && merging_.load(std::memory_order_acquire)) {
    row = FrozenDelta()->Get(entity, nullptr);
  }
  if (row != nullptr) {
    const std::uint32_t record_size = schema_->record_size();
    for (std::uint32_t off = 0; off < record_size;
         off += kPrefetchLineBytes) {
      AIM_PREFETCH_READ(row + off);
    }
    return;
  }
  const RecordId id = main_->Lookup(entity);
  if (id != kInvalidRecordId) main_->PrefetchRow(id, max_main_lines);
}

Version DeltaMainStore::CurrentVersion(EntityId entity, bool* found) const {
  Version version = 0;
  if (ActiveDelta()->Get(entity, &version) != nullptr) {
    *found = true;
    return version;
  }
  if (merging_.load(std::memory_order_acquire) &&
      FrozenDelta()->Get(entity, &version) != nullptr) {
    *found = true;
    return version;
  }
  const RecordId id = main_->Lookup(entity);
  if (id != kInvalidRecordId) {
    *found = true;
    return main_->version(id);
  }
  *found = false;
  return 0;
}

Status DeltaMainStore::Put(EntityId entity, const std::uint8_t* row,
                           Version expected_version) {
  bool found = false;
  const Version current = CurrentVersion(entity, &found);
  if (!found) return Status::NotFound();
  if (current != expected_version) {
    return Status::Conflict("version mismatch");
  }
  // Algorithm 4: always write to the active ("new") delta.
  ActiveDelta()->Put(entity, row, current + 1);
  if (metrics_.tracer != nullptr) metrics_.tracer->OnWrite(MonotonicNanos());
  return Status::OK();
}

Status DeltaMainStore::Insert(EntityId entity, const std::uint8_t* row) {
  bool found = false;
  (void)CurrentVersion(entity, &found);
  if (found) return Status::Conflict("entity already exists");
  ActiveDelta()->Put(entity, row, /*version=*/1);
  if (metrics_.tracer != nullptr) metrics_.tracer->OnWrite(MonotonicNanos());
  return Status::OK();
}

bool DeltaMainStore::Exists(EntityId entity) const {
  bool found = false;
  (void)CurrentVersion(entity, &found);
  return found;
}

Status DeltaMainStore::BulkInsert(EntityId entity, const std::uint8_t* row) {
  return BulkInsertWithVersion(entity, row, /*version=*/1);
}

Status DeltaMainStore::BulkInsertWithVersion(EntityId entity,
                                             const std::uint8_t* row,
                                             Version version) {
  StatusOr<RecordId> id = main_->Insert(entity, row, version);
  if (!id.ok()) return id.status();
  StampBucket(id.value());
  return Status::OK();
}

Status DeltaMainStore::BulkUpsertWithVersion(EntityId entity,
                                             const std::uint8_t* row,
                                             Version version) {
  const RecordId id = main_->Lookup(entity);
  if (id == kInvalidRecordId) {
    return BulkInsertWithVersion(entity, row, version);
  }
  main_->ScatterRow(id, row);
  main_->set_version(id, version);
  StampBucket(id);
  return Status::OK();
}

void DeltaMainStore::SwitchDeltas() {
  // relaxed: merging_ is only ever written by this (RTA) thread; this is a
  // same-thread protocol-state assertion, not a synchronization point.
  AIM_CHECK_MSG(!merging_.load(std::memory_order_relaxed),
                "SwitchDeltas while a merge is in flight");
  // The previous MergeStep must have drained the frozen delta.
  AIM_CHECK_MSG(FrozenDelta()->size() == 0,
                "SwitchDeltas with an undrained frozen delta");
  // Algorithm 6, epoch formulation (SwapHandshake): quiesce the ESP
  // writer, swap inside the window, release. Runs without the handshake
  // when no ESP thread is attached (single-threaded and test usage).
  handshake_.RunExclusive([this] { DoSwap(); });
  if (metrics_.frozen_delta_records != nullptr) {
    metrics_.frozen_delta_records->Set(
        static_cast<std::int64_t>(FrozenDelta()->size()));
  }
}

std::size_t DeltaMainStore::MergeStep() {
  // relaxed: merging_ is only written by this (RTA) thread — same-thread
  // protocol-state assertion.
  AIM_CHECK_MSG(merging_.load(std::memory_order_relaxed),
                "MergeStep without SwitchDeltas");
  Stopwatch merge_timer;
  Delta* frozen = FrozenDelta();
  std::size_t merged = 0;
  frozen->ForEach([&](EntityId entity, Version version,
                      const std::uint8_t* row) {
    const RecordId id = main_->Lookup(entity);
    if (id != kInvalidRecordId) {
      // A delta image always postdates the main image it shadows: every
      // Put writes version current+1 where current >= the main version.
      AIM_DCHECK_MSG(version > main_->version(id),
                     "merge would regress entity version");
      // Single pass, index lookup, in-place replace — no sorting needed
      // because both structures are indexed (paper footnote 3).
      main_->ScatterRow(id, row);
      main_->set_version(id, version);
      StampBucket(id);
    } else {
      StatusOr<RecordId> inserted = main_->Insert(entity, row, version);
      AIM_CHECK_MSG(inserted.ok(), "main full during merge: %s",
                    inserted.status().ToString().c_str());
      StampBucket(inserted.value());
    }
    ++merged;
  });
  frozen->Clear();
  // relaxed: the counter is monotone bookkeeping; the release on merging_
  // below publishes the merged data.
  merge_epoch_.fetch_add(1, std::memory_order_relaxed);
  merging_.store(false, std::memory_order_release);

  // Publication instrumentation: the merged records are scan-visible from
  // here on, so this is the exact moment t_fresh samples close.
  if (metrics_.merge_duration_micros != nullptr) {
    metrics_.merge_duration_micros->Record(merge_timer.ElapsedMicros());
  }
  if (metrics_.records_merged != nullptr) {
    metrics_.records_merged->Add(merged);
  }
  if (metrics_.merges != nullptr) metrics_.merges->Add();
  if (metrics_.merge_epoch != nullptr) {
    metrics_.merge_epoch->Set(static_cast<std::int64_t>(merge_epoch()));
  }
  if (metrics_.tracer != nullptr) metrics_.tracer->OnPublish(MonotonicNanos());
  return merged;
}

}  // namespace aim
