#ifndef AIM_STORAGE_RECOVERY_H_
#define AIM_STORAGE_RECOVERY_H_

#include <string>

#include "aim/common/status.h"
#include "aim/storage/checkpoint.h"
#include "aim/storage/delta_main.h"

namespace aim {
namespace checkpoint {

/// Checkpoint *chains*: one directory per partition holding
/// "ckpt-<epoch>.aimckpt" files — periodically a full image, between them
/// incremental deltas that chain by base_epoch. Recovery restores the
/// newest full image plus every delta that chains onto it, then replays
/// the partition's event log from the chain tip's log_lsn
/// (docs/DURABILITY.md, "Recovery").

/// Canonical file name for a chain member ("ckpt-0000000007.aimckpt").
std::string ChainFileName(const std::string& dir, std::uint64_t epoch);

/// Outcome of WriteChained / RecoverChain: the chain tip the directory now
/// (or after recovery, the store) corresponds to.
struct ChainTip {
  std::uint64_t epoch = 0;
  std::uint64_t log_lsn = 0;       // replay starts here
  CheckpointHeader::Kind kind = CheckpointHeader::Kind::kFull;
  std::uint64_t files_applied = 0;     // RecoverChain: chain length used
  std::uint64_t records_restored = 0;  // RecoverChain: payload records read
};

/// Writes the next checkpoint of `store` into `dir` and advances the
/// store's checkpoint epoch on success. The image is a delta against the
/// previous checkpoint when the directory's newest file is exactly the
/// store's previous epoch (the normal steady state) and `force_full` is
/// false; anything surprising — an empty directory, a gap, a foreign
/// epoch — falls back to a fresh full image, which is always safe: a full
/// image never depends on older files. `log_lsn` is recorded in the
/// header as the replay cursor this image covers.
///
/// Caller threading: the store's checkpointing (RTA/load) thread; for a
/// point-in-time image run the serialize quiesced — which is what
/// PrepareChained/CommitChained split out: Prepare serializes (call it
/// inside DeltaMainStore::RunQuiesced), Commit does the file I/O and the
/// epoch advance (call it outside the window — fsync latency must not
/// extend the ESP writer's park). WriteChained = Prepare + Commit for
/// single-threaded callers.
struct PendingCheckpoint {
  CheckpointHeader header;
  std::vector<std::uint8_t> bytes;
  std::string path;
};

StatusOr<PendingCheckpoint> PrepareChained(const DeltaMainStore& store,
                                           std::uint16_t entity_attr,
                                           const std::string& dir,
                                           std::uint64_t log_lsn,
                                           bool force_full = false);
Status CommitChained(const PendingCheckpoint& pending, DeltaMainStore* store);
StatusOr<ChainTip> WriteChained(DeltaMainStore* store,
                                std::uint16_t entity_attr,
                                const std::string& dir, std::uint64_t log_lsn,
                                bool force_full = false);

/// Restores the newest usable chain in `dir` into the (empty) store:
/// tries full images newest-first until one restores cleanly (a corrupt
/// full leaves the store empty, so the next older one is tried), then
/// applies deltas in ascending epoch order as long as each one chains
/// exactly onto the current tip and restores cleanly. A corrupt or
/// missing delta ends the chain early — correct, not fatal: the log
/// replay from the tip's log_lsn covers everything the dropped deltas
/// held. Sets the store's next checkpoint epoch past the tip. kNotFound
/// when the directory holds no usable full image (cold start).
StatusOr<ChainTip> RecoverChain(const std::string& dir, DeltaMainStore* store);

}  // namespace checkpoint
}  // namespace aim

#endif  // AIM_STORAGE_RECOVERY_H_
