#include "aim/storage/recovery.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <optional>

#include "aim/common/logging.h"
#include "aim/storage/fs_util.h"

namespace aim {
namespace checkpoint {

namespace {

constexpr char kChainSuffix[] = ".aimckpt";

std::optional<std::uint64_t> ParseChainEpoch(const std::string& name) {
  // "ckpt-<digits>.aimckpt"
  constexpr char kPrefix[] = "ckpt-";
  const std::size_t prefix_len = sizeof(kPrefix) - 1;
  const std::size_t suffix_len = sizeof(kChainSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix_len, suffix_len, kChainSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t epoch = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return epoch;
}

StatusOr<std::vector<std::uint8_t>> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("cannot stat " + path);
  }
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) return Status::Internal("short read from " + path);
  return buf;
}

}  // namespace

std::string ChainFileName(const std::string& dir, std::uint64_t epoch) {
  char name[64];
  std::snprintf(name, sizeof(name), "ckpt-%010llu%s",
                static_cast<unsigned long long>(epoch), kChainSuffix);
  return dir + "/" + name;
}

StatusOr<PendingCheckpoint> PrepareChained(const DeltaMainStore& store,
                                           std::uint16_t entity_attr,
                                           const std::string& dir,
                                           std::uint64_t log_lsn,
                                           bool force_full) {
  Status st = fs::EnsureDir(dir);
  if (!st.ok()) return st;
  const std::uint64_t epoch = store.next_checkpoint_epoch();
  // Delta only in the steady state: the immediately preceding epoch is on
  // disk (the usual case after the previous commit advanced the epoch).
  // Anything surprising — first checkpoint, a gap, a foreign directory —
  // degrades to a full image, which never depends on older files.
  bool delta = !force_full && epoch > 1 &&
               fs::FileSize(ChainFileName(dir, epoch - 1)).ok();
  PendingCheckpoint pending;
  pending.header.kind = delta ? CheckpointHeader::Kind::kDelta
                              : CheckpointHeader::Kind::kFull;
  pending.header.epoch = epoch;
  pending.header.base_epoch = delta ? epoch - 1 : 0;
  pending.header.log_lsn = log_lsn;
  BinaryWriter writer;
  st = WriteV2(store, entity_attr, pending.header, &writer);
  if (!st.ok()) return st;
  pending.bytes = writer.TakeBuffer();
  pending.path = ChainFileName(dir, epoch);
  return pending;
}

Status CommitChained(const PendingCheckpoint& pending, DeltaMainStore* store) {
  Status st = CommitFileAtomic(pending.path, pending.bytes);
  if (!st.ok()) return st;
  // Only after the file is durably committed does the epoch advance; a
  // failed commit retries under the same epoch (and the same dirty-bucket
  // stamps still select the same content).
  store->set_next_checkpoint_epoch(pending.header.epoch + 1);
  return Status::OK();
}

StatusOr<ChainTip> WriteChained(DeltaMainStore* store,
                                std::uint16_t entity_attr,
                                const std::string& dir, std::uint64_t log_lsn,
                                bool force_full) {
  StatusOr<PendingCheckpoint> pending =
      PrepareChained(*store, entity_attr, dir, log_lsn, force_full);
  if (!pending.ok()) return pending.status();
  Status st = CommitChained(*pending, store);
  if (!st.ok()) return st;
  ChainTip tip;
  tip.epoch = pending->header.epoch;
  tip.log_lsn = log_lsn;
  tip.kind = pending->header.kind;
  return tip;
}

StatusOr<ChainTip> RecoverChain(const std::string& dir,
                                DeltaMainStore* store) {
  StatusOr<std::vector<std::string>> names = fs::ListDir(dir);
  if (!names.ok()) {
    return names.status().IsNotFound()
               ? Status::NotFound("no checkpoint directory " + dir)
               : names.status();
  }
  // Load every chain member up front: epoch -> (bytes, header). Files that
  // fail even header decode are recorded with no header — they terminate
  // any chain that reaches them.
  struct Member {
    std::vector<std::uint8_t> bytes;
    std::optional<CheckpointHeader> header;
  };
  std::map<std::uint64_t, Member> members;
  for (const std::string& name : *names) {
    const std::optional<std::uint64_t> epoch = ParseChainEpoch(name);
    if (!epoch.has_value()) continue;
    Member m;
    StatusOr<std::vector<std::uint8_t>> bytes =
        ReadWholeFile(dir + "/" + name);
    if (bytes.ok()) {
      m.bytes = std::move(bytes).value();
      BinaryReader reader(m.bytes);
      CheckpointHeader header;
      if (DecodeCheckpointHeader(&reader, &header).ok()) m.header = header;
    }
    members.emplace(*epoch, std::move(m));
  }
  if (members.empty()) {
    return Status::NotFound("no checkpoints in " + dir);
  }

  // Newest-first over the full images: a corrupt full leaves the store
  // empty (all-or-nothing restore), so the next older one is a clean retry.
  ChainTip tip;
  bool restored = false;
  for (auto it = members.rbegin(); it != members.rend() && !restored; ++it) {
    const auto& [epoch, m] = *it;
    if (!m.header.has_value() ||
        m.header->kind != CheckpointHeader::Kind::kFull) {
      continue;
    }
    BinaryReader reader(m.bytes);
    const Status st = Restore(&reader, store);
    if (!st.ok()) {
      std::fprintf(stderr,
                   "aim: checkpoint %s unusable (%s); trying older\n",
                   ChainFileName(dir, epoch).c_str(), st.ToString().c_str());
      continue;
    }
    tip.epoch = epoch;
    tip.log_lsn = m.header->log_lsn;
    tip.kind = CheckpointHeader::Kind::kFull;
    tip.files_applied = 1;
    tip.records_restored = m.header->count;
    restored = true;
  }
  if (!restored) {
    return Status::NotFound("no usable full checkpoint in " + dir);
  }

  // Apply deltas ascending while each one chains exactly onto the tip. A
  // delta that fails (corrupt, wrong base) ends the chain — not recovery:
  // log replay from the tip's log_lsn covers what the dropped files held.
  for (auto it = members.upper_bound(tip.epoch); it != members.end(); ++it) {
    const auto& [epoch, m] = *it;
    if (!m.header.has_value() ||
        m.header->kind != CheckpointHeader::Kind::kDelta ||
        m.header->base_epoch != tip.epoch) {
      break;
    }
    BinaryReader reader(m.bytes);
    const Status st = Restore(&reader, store);
    if (!st.ok()) {
      std::fprintf(stderr,
                   "aim: delta checkpoint %s unusable (%s); replaying the "
                   "log from the last good checkpoint instead\n",
                   ChainFileName(dir, epoch).c_str(), st.ToString().c_str());
      break;
    }
    tip.epoch = epoch;
    tip.log_lsn = m.header->log_lsn;
    tip.kind = CheckpointHeader::Kind::kDelta;
    ++tip.files_applied;
    tip.records_restored += m.header->count;
  }

  // Files beyond the tip are unreachable chain segments (a corrupt link cut
  // them off). Remove them now: the next checkpoint reuses epoch tip+1, and
  // a stale file at a reused epoch would chain onto the *new* history and
  // resurrect old rows on a later recovery.
  bool removed_any = false;
  for (auto it = members.upper_bound(tip.epoch); it != members.end(); ++it) {
    if (std::remove(ChainFileName(dir, it->first).c_str()) == 0) {
      removed_any = true;
    }
  }
  if (removed_any) (void)fs::SyncDir(dir);

  store->set_next_checkpoint_epoch(tip.epoch + 1);
  return tip;
}

}  // namespace checkpoint
}  // namespace aim
