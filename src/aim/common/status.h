#ifndef AIM_COMMON_STATUS_H_
#define AIM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace aim {

/// RocksDB-style operation result. Functions that can fail return a Status;
/// functions that can fail and produce a value return StatusOr<T>.
///
/// A Status is cheap to copy (code + message string). The `ok()` fast path is
/// a single integer compare.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,        // key / record / table absent
    kConflict = 2,        // conditional write lost the race (stale version)
    kInvalidArgument = 3, // malformed query, schema violation, bad config
    kCapacity = 4,        // structure full (fixed-capacity delta, queue)
    kUnsupported = 5,     // feature intentionally out of scope
    kInternal = 6,        // invariant violation
    kTimedOut = 7,        // blocking call exceeded deadline
    kShutdown = 8,        // component is stopping; request not processed
    kDeadlineExceeded = 9, // request in flight lost its reply (network)
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Conflict(std::string msg = "") {
    return Status(Code::kConflict, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Capacity(std::string msg = "") {
    return Status(Code::kCapacity, std::move(msg));
  }
  static Status Unsupported(std::string msg = "") {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status Shutdown(std::string msg = "") {
    return Status(Code::kShutdown, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsConflict() const { return code_ == Code::kConflict; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCapacity() const { return code_ == Code::kCapacity; }
  bool IsUnsupported() const { return code_ == Code::kUnsupported; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsShutdown() const { return code_ == Code::kShutdown; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<CODE>: <message>" string for logs and test output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Minimal StatusOr: either an ok Status plus a value, or a non-ok Status.
/// Accessing value() on a non-ok StatusOr aborts (programming error).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT: implicit
  StatusOr(T value)                                        // NOLINT: implicit
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieStatusOrValue(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfNotOk() const {
  if (!status_.ok()) internal::DieStatusOrValue(status_);
}

}  // namespace aim

#endif  // AIM_COMMON_STATUS_H_
