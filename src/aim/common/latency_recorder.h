#ifndef AIM_COMMON_LATENCY_RECORDER_H_
#define AIM_COMMON_LATENCY_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aim {

/// Log-bucketed latency histogram (HdrHistogram-style, coarse). Records
/// microsecond samples into geometric buckets and answers percentile and
/// mean queries. Used by the benchmark harness to report the paper's
/// response-time series without storing every sample.
///
/// Not thread-safe; each measuring thread keeps its own recorder and the
/// harness calls Merge() afterwards.
class LatencyRecorder {
 public:
  LatencyRecorder();

  /// Record one sample, in microseconds.
  void Record(double micros);

  /// Merge another recorder's samples into this one.
  void Merge(const LatencyRecorder& other);

  std::uint64_t count() const { return count_; }
  double MeanMicros() const;
  double MaxMicros() const { return max_micros_; }
  double MinMicros() const { return count_ == 0 ? 0.0 : min_micros_; }

  /// Percentile in microseconds (q in [0,1], e.g. 0.99). Returns the upper
  /// edge of the bucket containing the q-quantile.
  double PercentileMicros(double q) const;

  /// "mean/p50/p95/p99/max" summary line in milliseconds.
  std::string SummaryMillis() const;

  void Reset();

 private:
  // Buckets cover [2^(i/4)) microseconds — ~19% resolution, 256 buckets
  // covers up to ~2^64 us which is far beyond any sane latency.
  static constexpr int kNumBuckets = 256;
  static int BucketFor(double micros);

  std::uint64_t buckets_[kNumBuckets];
  std::uint64_t count_;
  double sum_micros_;
  double max_micros_;
  double min_micros_;
};

}  // namespace aim

#endif  // AIM_COMMON_LATENCY_RECORDER_H_
