#ifndef AIM_COMMON_THREAD_NAME_H_
#define AIM_COMMON_THREAD_NAME_H_

#if defined(__linux__)
#include <pthread.h>
#endif

#include <cstdio>

namespace aim {

/// Names the calling thread for debuggers, /proc/<pid>/task/*/comm and
/// `top -H`. The node and the transports run half a dozen service threads
/// each; without names a stall investigation is guesswork about which
/// blocked tid is the connection reader versus an ESP loop. Best-effort:
/// a no-op off Linux, and the kernel truncates to 15 characters.
inline void SetCurrentThreadName(const char* name) {
#if defined(__linux__)
  pthread_setname_np(pthread_self(), name);
#else
  (void)name;
#endif
}

/// Formatting variant for indexed service threads ("aim-esp-3").
inline void SetCurrentThreadName(const char* prefix, unsigned index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%s%u", prefix, index);
  SetCurrentThreadName(buf);
}

}  // namespace aim

#endif  // AIM_COMMON_THREAD_NAME_H_
