#ifndef AIM_COMMON_HASH_H_
#define AIM_COMMON_HASH_H_

#include <cstdint>

namespace aim {

/// 64-bit mix finalizer (MurmurHash3 fmix64). Entity ids in the benchmark
/// are sequential integers, so the storage router and the delta hash map
/// must scramble them before taking a modulus — otherwise all keys of one
/// partition would collide into the same buckets.
inline std::uint64_t Mix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Two-level routing hashes (paper §4.8): first hash picks the storage node,
/// a node-local second hash (salted by node id) picks the partition. The
/// salt keeps the two levels independent so partitions stay balanced.
inline std::uint32_t NodeHash(std::uint64_t key, std::uint32_t num_nodes) {
  return static_cast<std::uint32_t>(Mix64(key) % num_nodes);
}

inline std::uint32_t PartitionHash(std::uint64_t key, std::uint32_t node_id,
                                   std::uint32_t num_partitions) {
  return static_cast<std::uint32_t>(
      Mix64(key ^ (0x517cc1b727220a95ULL * (node_id + 1))) % num_partitions);
}

}  // namespace aim

#endif  // AIM_COMMON_HASH_H_
