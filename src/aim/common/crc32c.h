#ifndef AIM_COMMON_CRC32C_H_
#define AIM_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace aim {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum guarding event-log records (storage/event_log.h). Chosen over
/// plain CRC-32 for its better burst-error detection; the software
/// slice-by-one table implementation is plenty for the log's per-batch
/// record granularity (one checksum per ProcessBatch run, not per event).
///
/// Incremental use: pass the previous return value as `seed` to extend a
/// checksum over discontiguous pieces. The seed for a fresh checksum is 0;
/// the xor-in/xor-out masking is handled internally, so
/// `Crc32c(b, n) == Crc32c(b + k, n - k, Crc32c(b, k))`.
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace aim

#endif  // AIM_COMMON_CRC32C_H_
