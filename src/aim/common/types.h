#ifndef AIM_COMMON_TYPES_H_
#define AIM_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace aim {

/// Application-visible entity identifier (subscriber id / cell id). Entity
/// ids are arbitrary application-dependent values; they are mapped to dense
/// record ids inside a ColumnMap (paper §4.5).
using EntityId = std::uint64_t;

/// Dense record index inside one ColumnMap partition; contiguous from 0.
using RecordId = std::uint32_t;

inline constexpr RecordId kInvalidRecordId =
    std::numeric_limits<RecordId>::max();

/// Event / record timestamps: milliseconds since an arbitrary epoch. The
/// benchmark drives a virtual clock, so epoch choice is irrelevant; only
/// window arithmetic (day/week boundaries) matters.
using Timestamp = std::int64_t;

inline constexpr Timestamp kMillisPerSecond = 1000;
inline constexpr Timestamp kMillisPerMinute = 60 * kMillisPerSecond;
inline constexpr Timestamp kMillisPerHour = 60 * kMillisPerMinute;
inline constexpr Timestamp kMillisPerDay = 24 * kMillisPerHour;
inline constexpr Timestamp kMillisPerWeek = 7 * kMillisPerDay;

/// Version counter attached to every Entity Record for conditional writes
/// (paper footnote 8): a Get returns the record's version; a Put only
/// succeeds if the version still matches.
using Version = std::uint64_t;

/// Identifier of a storage node in the (simulated) cluster.
using NodeId = std::uint32_t;

/// Identifier of an intra-node data partition (one RTA scan thread each).
using PartitionId = std::uint32_t;

}  // namespace aim

#endif  // AIM_COMMON_TYPES_H_
