#include "aim/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace aim {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kConflict:
      return "CONFLICT";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kCapacity:
      return "CAPACITY";
    case Status::Code::kUnsupported:
      return "UNSUPPORTED";
    case Status::Code::kInternal:
      return "INTERNAL";
    case Status::Code::kTimedOut:
      return "TIMED_OUT";
    case Status::Code::kShutdown:
      return "SHUTDOWN";
    case Status::Code::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void DieStatusOrValue(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() called on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace aim
