#include "aim/common/crash_point.h"

namespace aim {

namespace internal {
CrashPointHandler g_crash_point_handler = nullptr;
}  // namespace internal

void SetCrashPointHandler(CrashPointHandler handler) {
  internal::g_crash_point_handler = handler;
}

}  // namespace aim
