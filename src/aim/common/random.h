#ifndef AIM_COMMON_RANDOM_H_
#define AIM_COMMON_RANDOM_H_

#include <cstdint>

namespace aim {

/// Fast deterministic PRNG (xorshift128+). Used by every workload generator
/// so that benchmark runs are reproducible from a seed. Not for cryptography.
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 expansion of the seed into two non-zero lanes.
    state_[0] = SplitMix64(&seed);
    state_[1] = SplitMix64(&seed);
    if (state_[0] == 0 && state_[1] == 0) state_[0] = 1;
  }

  /// Uniform 64-bit value.
  std::uint64_t Next() {
    std::uint64_t s1 = state_[0];
    const std::uint64_t s0 = state_[1];
    state_[0] = s0;
    s1 ^= s1 << 23;
    state_[1] = s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26);
    return state_[1] + s0;
  }

  /// Uniform value in [0, n). n must be > 0.
  std::uint64_t Uniform(std::uint64_t n) { return Next() % n; }

  /// Uniform value in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / (1ULL << 53));
  }

  /// Bernoulli trial with probability p.
  bool OneIn(std::uint32_t n) { return Uniform(n) == 0; }

 private:
  static std::uint64_t SplitMix64(std::uint64_t* state) {
    std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[2];
};

}  // namespace aim

#endif  // AIM_COMMON_RANDOM_H_
