#ifndef AIM_COMMON_ANNOTATED_MUTEX_H_
#define AIM_COMMON_ANNOTATED_MUTEX_H_

// Clang Thread Safety Analysis wrappers — the compile-time layer of the
// three-layer concurrency story (docs/CORRECTNESS.md, "Thread-safety
// annotations"): annotations here are checked statically by
// `-Wthread-safety`, sanitizers catch what escapes at test time, and the
// model checker certifies the lock-free protocols the analysis cannot see.
//
// Every mutex-holding class in src/aim (outside mc/, which ships its own
// instrumented shims) uses these wrappers instead of the raw std types:
//
//   aim::Mutex mu_;                                  // the capability
//   std::vector<int> items_ AIM_GUARDED_BY(mu_);     // checked field
//   void DrainLocked() AIM_REQUIRES(mu_);            // checked method
//   { aim::MutexLock lock(mu_); items_.clear(); }    // checked acquisition
//
// tools/lint.sh rejects raw std::mutex / std::lock_guard /
// std::unique_lock anywhere else in src/aim, so the discipline cannot
// erode; tests/tsa/ proves with negative-compile fixtures that the
// analysis actually fires.
//
// On non-Clang toolchains every macro expands to nothing and the wrappers
// are zero-overhead inline shims over the std types — GCC builds are
// byte-for-byte the unannotated program.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

#if defined(__clang__) && !defined(SWIG)
#define AIM_TSA_ATTRIBUTE(x) __attribute__((x))
#else
#define AIM_TSA_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define AIM_CAPABILITY(x) AIM_TSA_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define AIM_SCOPED_CAPABILITY AIM_TSA_ATTRIBUTE(scoped_lockable)

/// Field may only be touched while holding the named capability.
#define AIM_GUARDED_BY(x) AIM_TSA_ATTRIBUTE(guarded_by(x))

/// Pointer field whose *pointee* is protected by the named capability.
#define AIM_PT_GUARDED_BY(x) AIM_TSA_ATTRIBUTE(pt_guarded_by(x))

/// Function acquires the capability (and did not hold it on entry).
#define AIM_ACQUIRE(...) AIM_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define AIM_ACQUIRE_SHARED(...) \
  AIM_TSA_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry).
#define AIM_RELEASE(...) AIM_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define AIM_RELEASE_SHARED(...) \
  AIM_TSA_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define AIM_TRY_ACQUIRE(...) \
  AIM_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define AIM_TRY_ACQUIRE_SHARED(...) \
  AIM_TSA_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must hold the capability exclusively (shared: at least shared).
#define AIM_REQUIRES(...) AIM_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define AIM_REQUIRES_SHARED(...) \
  AIM_TSA_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself;
/// catches self-deadlock).
#define AIM_EXCLUDES(...) AIM_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Static lock-ordering declaration (checked under -Wthread-safety-beta).
#define AIM_ACQUIRED_BEFORE(...) \
  AIM_TSA_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define AIM_ACQUIRED_AFTER(...) AIM_TSA_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define AIM_RETURN_CAPABILITY(x) AIM_TSA_ATTRIBUTE(lock_returned(x))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define AIM_ASSERT_CAPABILITY(x) AIM_TSA_ATTRIBUTE(assert_capability(x))

/// Escape hatch for code the analysis cannot model. Every use carries a
/// comment saying why (same policy as "// relaxed:" justifications).
#define AIM_NO_THREAD_SAFETY_ANALYSIS \
  AIM_TSA_ATTRIBUTE(no_thread_safety_analysis)

namespace aim {

class CondVar;

/// std::mutex with the capability annotation. Lowercase lock/unlock keep
/// BasicLockable compatibility so generic code (and std::lock-style
/// helpers inside the wrappers) keep working.
class AIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AIM_ACQUIRE() { mu_.lock(); }
  void unlock() AIM_RELEASE() { mu_.unlock(); }
  bool try_lock() AIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex with the capability annotation (reader/writer stores
/// in baselines/).
class AIM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() AIM_ACQUIRE() { mu_.lock(); }
  void unlock() AIM_RELEASE() { mu_.unlock(); }
  bool try_lock() AIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() AIM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() AIM_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() AIM_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over aim::Mutex — the annotated stand-in for
/// std::lock_guard / std::unique_lock. Exposes mutex() for signature
/// parity with std::unique_lock, which is what lets the protocol
/// templates swap in the model checker's lock type (mc::UniqueLock) via
/// the sync provider.
class AIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AIM_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() AIM_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  Mutex* mutex() const { return mu_; }

 private:
  Mutex* mu_;
};

/// Scoped shared (reader) lock over aim::SharedMutex.
class AIM_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) AIM_ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->lock_shared();
  }
  ~ReaderLock() AIM_RELEASE_SHARED() { mu_->unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Scoped exclusive (writer) lock over aim::SharedMutex.
class AIM_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) AIM_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  ~WriterLock() AIM_RELEASE() { mu_->unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// std::condition_variable against aim::Mutex, waiting through a
/// MutexLock. The analysis treats the lock as continuously held across
/// wait() — the standard TSA model for condvars: the lock is held on
/// entry and re-held on every return, and the guarded-field invariants
/// the predicate checks are exactly the ones the capability protects.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Single wait (may wake spuriously). Callers re-check their predicate
  /// in an explicit `while (!pred) cv.wait(lock);` loop — the loop body
  /// then sits in the locked scope, where the analysis can check the
  /// guarded fields the predicate reads (a lambda predicate would be
  /// analyzed as a separate, lock-less function and flagged).
  void wait(MutexLock& lock) AIM_NO_THREAD_SAFETY_ANALYSIS {
    // Adopt the already-held mutex for the duration of the std wait, then
    // release ownership back to the MutexLock (which unlocks at scope
    // exit as usual). No lock/unlock happens here beyond the condvar's
    // own internal reacquisition.
    std::unique_lock<std::mutex> inner(lock.mutex()->mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace aim

#endif  // AIM_COMMON_ANNOTATED_MUTEX_H_
