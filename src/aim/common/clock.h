#ifndef AIM_COMMON_CLOCK_H_
#define AIM_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "aim/common/types.h"

namespace aim {

/// Time source abstraction. Window semantics (today / this week / last 24h)
/// depend on "now"; tests and the deterministic benchmark drive a
/// VirtualClock, production-style runs use WallClock.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in milliseconds since the clock's epoch.
  virtual Timestamp NowMillis() const = 0;
};

/// Monotonic wall-clock (steady_clock based, epoch = first process use).
class WallClock : public Clock {
 public:
  Timestamp NowMillis() const override {
    using namespace std::chrono;
    return duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock for tests and deterministic workload replay.
/// Thread-safe: readers may race with Advance().
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(Timestamp start = 0) : now_(start) {}

  // relaxed: the virtual time value is self-contained — no reader
  // derives other shared state from it, so no ordering is needed.
  Timestamp NowMillis() const override {
    return now_.load(std::memory_order_relaxed);
  }

  // relaxed: see NowMillis.
  void Advance(Timestamp delta_ms) {
    now_.fetch_add(delta_ms, std::memory_order_relaxed);
  }

  // relaxed: see NowMillis.
  void Set(Timestamp t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<Timestamp> now_;
};

/// Monotonic nanosecond timestamp (steady_clock). The shared time source
/// for latency instrumentation and the freshness tracer — every stamp and
/// publication observation must come off the same monotonic clock.
inline std::int64_t MonotonicNanos() {
  using namespace std::chrono;
  return duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
      .count();
}

/// High-resolution stopwatch for latency measurements (nanosecond ticks).
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  std::int64_t ElapsedNanos() const { return Now() - start_; }
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  static std::int64_t Now() {
    using namespace std::chrono;
    return duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
        .count();
  }

  std::int64_t start_;
};

}  // namespace aim

#endif  // AIM_COMMON_CLOCK_H_
