#ifndef AIM_COMMON_CRASH_POINT_H_
#define AIM_COMMON_CRASH_POINT_H_

namespace aim {

/// Kill-point fault injection for the durability tier (docs/CORRECTNESS.md,
/// "Kill-point fault injection"). Production code marks the instants where
/// a crash is interesting — between a write and its fsync, between a rename
/// and the directory sync — with AIM_CRASH_POINT("name"). A test harness
/// installs a handler in a *child process* that calls _exit() when the
/// named point is hit; the parent then recovers from the on-disk state the
/// simulated crash left behind and asserts consistency.
///
/// With no handler installed (every production run) a crash point is a
/// single predictable-branch null check — cheap enough to leave in release
/// builds, which is the point: the binary that is tested for crash safety
/// is the binary that ships.
///
/// The handler pointer is process-global and installed before any threads
/// start (the harness installs it at child-process startup); it is not a
/// synchronization point.
using CrashPointHandler = void (*)(const char* point);

/// Installs (or, with nullptr, removes) the process-wide handler.
/// Test-only; call before starting any threads that may hit a point.
void SetCrashPointHandler(CrashPointHandler handler);

namespace internal {
extern CrashPointHandler g_crash_point_handler;
}  // namespace internal

/// Marks a named crash point. The handler decides whether to die here.
#define AIM_CRASH_POINT(name)                                  \
  do {                                                         \
    if (::aim::internal::g_crash_point_handler != nullptr) {   \
      ::aim::internal::g_crash_point_handler(name);            \
    }                                                          \
  } while (0)

}  // namespace aim

#endif  // AIM_COMMON_CRASH_POINT_H_
