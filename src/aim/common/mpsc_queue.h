#ifndef AIM_COMMON_MPSC_QUEUE_H_
#define AIM_COMMON_MPSC_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>

#include "aim/common/annotated_mutex.h"
#include "aim/common/sync_provider.h"

namespace aim {

/// Bounded multi-producer single-consumer queue used as the "network" between
/// simulated tiers (ESP nodes -> storage node, RTA front-end -> storage node,
/// storage node -> RTA front-end). A plain mutex + condvar queue is fast
/// enough at the message rates of the simulation and keeps the code obvious.
///
/// Close() wakes all waiters; after Close(), Push fails and Pop drains the
/// remaining items before reporting emptiness.
///
/// All condvar notifications happen while the mutex is held. Notifying
/// after unlock would let the peer consume the item and destroy the queue
/// while the notifier is still inside pthread_cond_signal on the freed
/// condvar — a real use-after-free for the common "pop the final reply,
/// then drop the queue" pattern (caught by TSan in the stress tier and
/// proved exhaustively by tests/mc/mpsc_queue_mc_test.cc, which
/// instantiates this class with the model checker's sync provider — that
/// is what the P parameter exists for; production uses the default).
///
/// Condvar waits are explicit predicate loops, not wait(lock, pred)
/// lambdas: the loop body lives in the locked scope, so the thread-safety
/// analysis can check every guarded-field read the predicate makes
/// (annotated_mutex.h explains the lambda blind spot).
template <typename T, typename P = RealSyncProvider>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Blocking push. Returns false if the queue was closed.
  bool Push(T item) {
    typename P::UniqueLock lock(mu_);
    while (!(closed_ || capacity_ == 0 || items_.size() < capacity_)) {
      not_full_.wait(lock);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool TryPush(T item) {
    typename P::UniqueLock lock(mu_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop. Returns nullopt once the queue is closed and drained.
  std::optional<T> Pop() {
    typename P::UniqueLock lock(mu_);
    while (!closed_ && items_.empty()) {
      not_empty_.wait(lock);
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    typename P::UniqueLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Drain every currently queued item into `out` (appends). Used by the
  /// shared-scan loop to grab the whole pending query batch at once.
  /// Returns the number of items drained.
  template <typename Container>
  std::size_t DrainInto(Container* out) {
    return DrainInto(out, 0);
  }

  /// Drain up to `max_items` queued items into `out` (appends); 0 = no
  /// limit. The batched ESP service loops use the bounded form so one
  /// wakeup grabs a whole batch in a single lock acquisition without
  /// starving completion latency behind an unbounded backlog. Returns the
  /// number of items drained.
  template <typename Container>
  std::size_t DrainInto(Container* out, std::size_t max_items) {
    typename P::UniqueLock lock(mu_);
    std::size_t n = items_.size();
    if (max_items != 0 && max_items < n) n = max_items;
    for (std::size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Push a whole batch under one lock acquisition. All-or-nothing against
  /// Close (returns false with no items enqueued if closed); a bounded
  /// queue admits the batch even past capacity rather than deadlocking the
  /// producer mid-batch — capacity is a pacing hint here, not a hard limit.
  template <typename It>
  bool PushAll(It first, It last) {
    typename P::UniqueLock lock(mu_);
    if (closed_) return false;
    if (first == last) return true;
    while (!(closed_ || capacity_ == 0 || items_.size() < capacity_)) {
      not_full_.wait(lock);
    }
    if (closed_) return false;
    for (It it = first; it != last; ++it) {
      items_.push_back(std::move(*it));
    }
    not_empty_.notify_all();
    return true;
  }

  void Close() {
    typename P::UniqueLock lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    typename P::UniqueLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    typename P::UniqueLock lock(mu_);
    return items_.size();
  }

 private:
  mutable typename P::Mutex mu_;
  typename P::CondVar not_empty_;
  typename P::CondVar not_full_;
  std::deque<T> items_ AIM_GUARDED_BY(mu_);
  const std::size_t capacity_;  // 0 = unbounded
  bool closed_ AIM_GUARDED_BY(mu_) = false;
};

}  // namespace aim

#endif  // AIM_COMMON_MPSC_QUEUE_H_
