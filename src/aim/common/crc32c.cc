#include "aim/common/crc32c.h"

#include <array>

namespace aim {
namespace {

// Reflected Castagnoli table, generated once at static-init time (256
// entries, bit-at-a-time) instead of being pasted in: the generator is the
// specification, so the table cannot silently drift from the polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace aim
