#ifndef AIM_COMMON_SYNC_PROVIDER_H_
#define AIM_COMMON_SYNC_PROVIDER_H_

#include <atomic>
#include <thread>

#include "aim/common/annotated_mutex.h"

namespace aim {

/// Synchronization-primitive provider for the concurrency-protocol
/// templates (SwapHandshake, BasicDenseMap, MpscQueue). Production code
/// instantiates them with this provider — the Clang-TSA-annotated
/// wrappers from annotated_mutex.h, zero overhead over the std types;
/// the model checker instantiates them with mc::ModelSyncProvider
/// (aim/mc/shim.h), which routes every operation through an exhaustive
/// interleaving explorer. Parameterizing the *real* protocol code is what
/// lets the checker test production logic instead of a re-implementation
/// (see docs/CORRECTNESS.md, "Model checking").
struct RealSyncProvider {
  template <typename T>
  using Atomic = std::atomic<T>;
  using AtomicBool = std::atomic<bool>;
  using Mutex = aim::Mutex;
  using CondVar = aim::CondVar;
  /// Scoped exclusive lock over Mutex, condvar-wait capable. The model
  /// checker substitutes mc::UniqueLock; both expose mutex() like
  /// std::unique_lock.
  using UniqueLock = aim::MutexLock;

  /// Spin-throttle for handshake wait loops: pause for short waits, yield
  /// once the other side clearly is not running (mandatory on
  /// oversubscribed cores, where pure pause-spinning livelocks the
  /// handshake until the OS preempts us). Never an ordering operation —
  /// protocol correctness must not depend on it (the model checker
  /// replaces it with a block-until-peer-writes hint).
  static void Pause(int spins) {
    if (spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      // No pause instruction: yield instead of spinning hot. (A fence here
      // would smuggle in ordering the protocol must not rely on.)
      std::this_thread::yield();
#endif
    } else {
      std::this_thread::yield();
    }
  }
};

}  // namespace aim

#endif  // AIM_COMMON_SYNC_PROVIDER_H_
