#ifndef AIM_COMMON_BINARY_IO_H_
#define AIM_COMMON_BINARY_IO_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace aim {

// The writer/reader pair memcpys host-endian bytes, so the wire format is
// little-endian only because every supported host is. Now that these bytes
// cross a real TCP connection (aim/net), a big-endian peer would silently
// misparse every integer — refuse to build there instead of byteswapping on
// the (hot) serialization path.
static_assert(std::endian::native == std::endian::little,
              "aim wire format requires a little-endian host");

/// Little-endian append-only binary writer (enforced by the static_assert
/// above: integers are memcpy'd host-endian). Messages between tiers
/// (events, queries, partial results) are serialized with this so that the
/// code path exercised matches a real networked deployment: structures are
/// flattened, shipped as bytes, and re-parsed on the other side — since the
/// aim/net transport, possibly over an actual socket.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  /// Starts from `buf` (cleared, capacity kept) — pairs with BufferPool so
  /// serialize-heavy paths can reuse buffers instead of allocating.
  explicit BinaryWriter(std::vector<std::uint8_t>&& buf)
      : buf_(std::move(buf)) {
    buf_.clear();
  }

  void PutU8(std::uint8_t v) { Append(&v, 1); }
  void PutU16(std::uint16_t v) { Append(&v, 2); }
  void PutU32(std::uint32_t v) { Append(&v, 4); }
  void PutU64(std::uint64_t v) { Append(&v, 8); }
  void PutI32(std::int32_t v) { Append(&v, 4); }
  void PutI64(std::int64_t v) { Append(&v, 8); }
  void PutF32(float v) { Append(&v, 4); }
  void PutF64(double v) { Append(&v, 8); }

  void PutBytes(const void* data, std::size_t n) { Append(data, n); }

  void PutString(const std::string& s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    Append(s.data(), s.size());
  }

  /// Overwrites 8 previously written bytes at `offset` — for headers whose
  /// count is only known after the payload is serialized (checkpoint
  /// backpatch). `offset + 8` must not exceed size().
  void PatchU64(std::size_t offset, std::uint64_t v) {
    std::memcpy(buf_.data() + offset, &v, sizeof(v));
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> TakeBuffer() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void Append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<std::uint8_t> buf_;
};

/// Companion reader. Out-of-bounds reads set a sticky error flag and return
/// zeroes instead of invoking UB; callers check ok() once after parsing.
class BinaryReader {
 public:
  BinaryReader(const void* data, std::size_t size)
      : data_(static_cast<const std::uint8_t*>(data)), size_(size) {}
  explicit BinaryReader(const std::vector<std::uint8_t>& buf)
      : BinaryReader(buf.data(), buf.size()) {}

  std::uint8_t GetU8() { return GetPod<std::uint8_t>(); }
  std::uint16_t GetU16() { return GetPod<std::uint16_t>(); }
  std::uint32_t GetU32() { return GetPod<std::uint32_t>(); }
  std::uint64_t GetU64() { return GetPod<std::uint64_t>(); }
  std::int32_t GetI32() { return GetPod<std::int32_t>(); }
  std::int64_t GetI64() { return GetPod<std::int64_t>(); }
  float GetF32() { return GetPod<float>(); }
  double GetF64() { return GetPod<double>(); }

  std::string GetString() {
    std::uint32_t n = GetU32();
    if (!CheckAvailable(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  bool GetBytes(void* out, std::size_t n) {
    if (!CheckAvailable(n)) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  // --- checked length-prefixed reads --------------------------------------
  // Every decoder that reads an attacker-controlled element count MUST
  // validate it against the bytes actually present *before* sizing any
  // container: a 32-bit count in a 100-byte payload can announce 4 billion
  // elements, and a reserve()/resize() on the announced value is a remote
  // allocation bomb even though the per-element reads would fail later.
  // These helpers fold the validation into the read: they fail the reader
  // (sticky, like any short read) and return 0 when the count cannot fit in
  // the remaining input, so `reserve(GetCountU32(...))` is always safe.

  /// Reads a u32 element count whose elements each consume at least
  /// `min_element_size` bytes (>= 1) of the remaining input.
  std::uint32_t GetCountU32(std::size_t min_element_size) {
    return GetCountImpl<std::uint32_t>(min_element_size);
  }

  /// u64 variant for headers with 64-bit counts (checkpoints).
  std::uint64_t GetCountU64(std::size_t min_element_size) {
    return GetCountImpl<std::uint64_t>(min_element_size);
  }

  /// Length-prefixed byte vector: u32 length + that many bytes, validated
  /// before `out` is sized. `out` is cleared on failure.
  bool GetSizedBytes(std::vector<std::uint8_t>* out) {
    const std::uint32_t n = GetU32();
    if (!ok_ || !CheckAvailable(n)) {
      out->clear();
      return false;
    }
    out->assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

  /// Poisons the reader. Decoders that detect semantic corruption the byte
  /// reads cannot see (an unknown enum tag, a count/size mismatch) fail the
  /// same sticky way a short read does, so one ok() check covers both.
  void Fail() {
    ok_ = false;
    pos_ = size_;
  }

  /// Pointer to `n` bytes at `offset` past the cursor without consuming
  /// them, or nullptr when they are not all present. Lets a decoder run a
  /// cheap validation pass over fixed-stride records before committing to
  /// side effects (checkpoint restore's all-or-nothing contract).
  const std::uint8_t* Peek(std::size_t offset, std::size_t n) const {
    if (!ok_ || offset > size_ - pos_ || n > size_ - pos_ - offset) {
      return nullptr;
    }
    return data_ + pos_ + offset;
  }

 private:
  template <typename T>
  T GetPod() {
    T v{};
    if (CheckAvailable(sizeof(T))) {
      std::memcpy(&v, data_ + pos_, sizeof(T));
      pos_ += sizeof(T);
    }
    return v;
  }

  template <typename T>
  T GetCountImpl(std::size_t min_element_size) {
    const T n = GetPod<T>();
    if (!ok_) return 0;
    // A zero stride would make any count "fit"; treat it as 1 so the count
    // stays bounded by the input size even on a caller mistake.
    const std::size_t stride = min_element_size == 0 ? 1 : min_element_size;
    // Division (not multiplication) so a hostile count cannot overflow.
    if (n > static_cast<T>(remaining() / stride)) {
      ok_ = false;
      pos_ = size_;
      return 0;
    }
    return n;
  }

  bool CheckAvailable(std::size_t n) {
    if (size_ - pos_ < n) {
      ok_ = false;
      pos_ = size_;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace aim

#endif  // AIM_COMMON_BINARY_IO_H_
