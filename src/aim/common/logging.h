#ifndef AIM_COMMON_LOGGING_H_
#define AIM_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace aim {

/// Invariant checking. AIM_CHECK stays on in release builds: storage-engine
/// invariant violations must fail fast, never corrupt the store. The cost is
/// a predictable branch per check, which is negligible next to the work the
/// checked code does.
#define AIM_CHECK(cond)                                                    \
  do {                                                                     \
    if (__builtin_expect(!(cond), 0)) {                                    \
      std::fprintf(stderr, "AIM_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define AIM_CHECK_MSG(cond, ...)                                           \
  do {                                                                     \
    if (__builtin_expect(!(cond), 0)) {                                    \
      std::fprintf(stderr, "AIM_CHECK failed at %s:%d: %s: ", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Debug-only check, compiled out in release builds (hot paths).
#ifdef NDEBUG
#define AIM_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define AIM_DCHECK(cond) AIM_CHECK(cond)
#endif

}  // namespace aim

#endif  // AIM_COMMON_LOGGING_H_
