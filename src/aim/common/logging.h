#ifndef AIM_COMMON_LOGGING_H_
#define AIM_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace aim {

/// Invariant checking. AIM_CHECK stays on in release builds: storage-engine
/// invariant violations must fail fast, never corrupt the store. The cost is
/// a predictable branch per check, which is negligible next to the work the
/// checked code does.
#define AIM_CHECK(cond)                                                    \
  do {                                                                     \
    if (__builtin_expect(!(cond), 0)) {                                    \
      std::fprintf(stderr, "AIM_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define AIM_CHECK_MSG(cond, ...)                                           \
  do {                                                                     \
    if (__builtin_expect(!(cond), 0)) {                                    \
      std::fprintf(stderr, "AIM_CHECK failed at %s:%d: %s: ", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Debug-only checks, compiled out under NDEBUG (hot paths). The condition
/// stays inside an unevaluated sizeof so it is still parsed (and its
/// variables count as used) without generating any code.
///
/// Policy (docs/CORRECTNESS.md): AIM_DCHECK guards invariants on hot paths
/// that AIM_CHECK would make measurably slower — per-record bounds, swap
/// preconditions, version monotonicity. Sanitizer builds compile without
/// NDEBUG, so the stress tier runs with every DCHECK live.
#ifdef NDEBUG
#define AIM_DCHECK(cond)     \
  do {                       \
    (void)sizeof(!(cond));   \
  } while (0)
#define AIM_DCHECK_MSG(cond, ...) \
  do {                            \
    (void)sizeof(!(cond));        \
  } while (0)
#else
#define AIM_DCHECK(cond) AIM_CHECK(cond)
#define AIM_DCHECK_MSG(cond, ...) AIM_CHECK_MSG(cond, __VA_ARGS__)
#endif

}  // namespace aim

#endif  // AIM_COMMON_LOGGING_H_
