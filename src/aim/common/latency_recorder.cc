#include "aim/common/latency_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace aim {

LatencyRecorder::LatencyRecorder() { Reset(); }

void LatencyRecorder::Reset() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_micros_ = 0.0;
  max_micros_ = 0.0;
  min_micros_ = 0.0;
}

int LatencyRecorder::BucketFor(double micros) {
  if (micros <= 1.0) return 0;
  // 4 buckets per octave: index = 4 * log2(micros).
  int idx = static_cast<int>(4.0 * std::log2(micros));
  return std::min(idx, kNumBuckets - 1);
}

void LatencyRecorder::Record(double micros) {
  if (micros < 0) micros = 0;
  buckets_[BucketFor(micros)]++;
  if (count_ == 0 || micros < min_micros_) min_micros_ = micros;
  if (micros > max_micros_) max_micros_ = micros;
  count_++;
  sum_micros_ += micros;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_micros_ < min_micros_) {
      min_micros_ = other.min_micros_;
    }
    max_micros_ = std::max(max_micros_, other.max_micros_);
  }
  count_ += other.count_;
  sum_micros_ += other.sum_micros_;
}

double LatencyRecorder::MeanMicros() const {
  return count_ == 0 ? 0.0 : sum_micros_ / static_cast<double>(count_);
}

double LatencyRecorder::PercentileMicros(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      // Upper edge of bucket i: 2^((i+1)/4) microseconds.
      return std::exp2(static_cast<double>(i + 1) / 4.0);
    }
  }
  return max_micros_;
}

std::string LatencyRecorder::SummaryMillis() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms "
                "(n=%llu)",
                MeanMicros() / 1e3, PercentileMicros(0.50) / 1e3,
                PercentileMicros(0.95) / 1e3, PercentileMicros(0.99) / 1e3,
                max_micros_ / 1e3,
                static_cast<unsigned long long>(count_));
  return std::string(buf);
}

}  // namespace aim
