#ifndef AIM_COMMON_BUFFER_POOL_H_
#define AIM_COMMON_BUFFER_POOL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "aim/common/annotated_mutex.h"

namespace aim {

/// Bounded free-list of byte buffers for the event submit paths. Every
/// submitted event used to allocate a fresh std::vector for its 64 wire
/// bytes and free it after processing; at millions of events per second
/// that is pure allocator churn. Producers Acquire() a recycled buffer
/// (capacity retained from its last trip through the pipeline), the
/// consumer Release()s it after decoding.
///
/// Thread-safe; overflow beyond `max_buffers` is simply dropped to the
/// allocator, so the pool can never grow without bound.
class BufferPool {
 public:
  explicit BufferPool(std::size_t max_buffers = 256)
      : max_buffers_(max_buffers) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an empty buffer, reusing a pooled one when available.
  std::vector<std::uint8_t> Acquire() {
    MutexLock lock(mu_);
    if (free_.empty()) return {};
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    return buf;
  }

  /// Returns a buffer to the pool (dropped if the pool is full or the
  /// buffer never allocated).
  void Release(std::vector<std::uint8_t>&& buf) {
    if (buf.capacity() == 0) return;
    MutexLock lock(mu_);
    if (free_.size() >= max_buffers_) return;  // fall to the allocator
    free_.push_back(std::move(buf));
  }

  std::size_t free_count() const {
    MutexLock lock(mu_);
    return free_.size();
  }

 private:
  mutable Mutex mu_;
  std::vector<std::vector<std::uint8_t>> free_ AIM_GUARDED_BY(mu_);
  const std::size_t max_buffers_;
};

}  // namespace aim

#endif  // AIM_COMMON_BUFFER_POOL_H_
