#ifndef AIM_COMMON_PREFETCH_H_
#define AIM_COMMON_PREFETCH_H_

#include <cstddef>

/// Software prefetch hint used by the batched ESP ingest path (group
/// prefetching over the delta hash index and the ColumnMap buckets while a
/// preceding event is still being applied — the Polynesia observation that
/// the *update* path, not the scan path, is where memory stalls concentrate).
///
/// A pure hint: issuing it never changes observable behaviour, so the
/// batched engine stays bit-identical to sequential processing by
/// construction. Compiles to nothing on toolchains without
/// __builtin_prefetch.
#if defined(__GNUC__) || defined(__clang__)
#define AIM_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 3)
#define AIM_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 3)
#else
#define AIM_PREFETCH_READ(addr) ((void)(addr))
#define AIM_PREFETCH_WRITE(addr) ((void)(addr))
#endif

namespace aim {

/// Cache-line stride assumed by multi-line prefetch loops. 64 bytes on every
/// target this repo builds for; a wrong guess only wastes a hint.
inline constexpr std::size_t kPrefetchLineBytes = 64;

}  // namespace aim

#endif  // AIM_COMMON_PREFETCH_H_
