#include "aim/schema/value.h"

#include <cstdio>

namespace aim {

std::string Value::ToString() const {
  char buf[48];
  switch (type_) {
    case ValueType::kInt32:
      std::snprintf(buf, sizeof(buf), "%d", bits_.i32);
      break;
    case ValueType::kUInt32:
      std::snprintf(buf, sizeof(buf), "%u", bits_.u32);
      break;
    case ValueType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(bits_.i64));
      break;
    case ValueType::kUInt64:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(bits_.u64));
      break;
    case ValueType::kFloat:
      std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(bits_.f32));
      break;
    case ValueType::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", bits_.f64);
      break;
  }
  return std::string(buf);
}

}  // namespace aim
