#ifndef AIM_SCHEMA_WINDOW_H_
#define AIM_SCHEMA_WINDOW_H_

#include <cstdint>
#include <string>

#include "aim/common/types.h"

namespace aim {

/// Aggregation window semantics (paper §2.1):
///  * tumbling — "today", "this week": resets at fixed period boundaries.
///  * sliding — "last 24 hours", "last 7 days": approximated with a ring of
///    `num_slots` subwindows, the standard panes technique. The indicator
///    combines all live slots; granularity error is one slot length.
///  * event-based — "over the last N events": exact, via a ring buffer of
///    the last N metric values kept in the attribute group's state block.
enum class WindowKind : std::uint8_t {
  kTumbling = 0,
  kSliding = 1,
  kEventBased = 2,
};

struct WindowSpec {
  WindowKind kind = WindowKind::kTumbling;

  /// Tumbling: period length. Sliding: total span covered by the ring.
  /// Ignored for event-based windows.
  Timestamp length_ms = kMillisPerDay;

  /// Sliding: number of subwindow slots (slot length = length_ms / num_slots).
  /// Event-based: N, the number of most recent events covered.
  std::uint16_t num_slots = 1;

  static WindowSpec Tumbling(Timestamp length_ms) {
    return {WindowKind::kTumbling, length_ms, 1};
  }
  static WindowSpec Sliding(Timestamp length_ms, std::uint16_t slots) {
    return {WindowKind::kSliding, length_ms, slots};
  }
  static WindowSpec LastNEvents(std::uint16_t n) {
    return {WindowKind::kEventBased, 0, n};
  }

  /// Convenience constructors matching the benchmark's window set.
  static WindowSpec Today() { return Tumbling(kMillisPerDay); }
  static WindowSpec ThisWeek() { return Tumbling(kMillisPerWeek); }
  static WindowSpec Last24Hours() { return Sliding(kMillisPerDay, 24); }
  static WindowSpec Last7Days() { return Sliding(kMillisPerWeek, 7); }

  Timestamp SlotLengthMs() const {
    return num_slots == 0 ? length_ms : length_ms / num_slots;
  }

  /// Start of the tumbling window (or sliding slot) containing `ts`.
  static Timestamp AlignDown(Timestamp ts, Timestamp period) {
    if (period <= 0) return ts;
    Timestamp r = ts % period;
    if (r < 0) r += period;  // negative timestamps round toward -inf
    return ts - r;
  }

  std::string ToString() const;

  friend bool operator==(const WindowSpec& a, const WindowSpec& b) {
    return a.kind == b.kind && a.length_ms == b.length_ms &&
           a.num_slots == b.num_slots;
  }
};

}  // namespace aim

#endif  // AIM_SCHEMA_WINDOW_H_
