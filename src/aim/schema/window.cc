#include "aim/schema/window.h"

#include <cstdio>

namespace aim {

std::string WindowSpec::ToString() const {
  char buf[64];
  switch (kind) {
    case WindowKind::kTumbling:
      std::snprintf(buf, sizeof(buf), "tumbling(%lldms)",
                    static_cast<long long>(length_ms));
      break;
    case WindowKind::kSliding:
      std::snprintf(buf, sizeof(buf), "sliding(%lldms,%u slots)",
                    static_cast<long long>(length_ms), num_slots);
      break;
    case WindowKind::kEventBased:
      std::snprintf(buf, sizeof(buf), "last_%u_events", num_slots);
      break;
  }
  return std::string(buf);
}

}  // namespace aim
