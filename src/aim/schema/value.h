#ifndef AIM_SCHEMA_VALUE_H_
#define AIM_SCHEMA_VALUE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "aim/common/logging.h"

namespace aim {

/// Fixed-width column types supported by the Analytics Matrix. The paper's
/// update kernel covers integer, long, float and double aggregates
/// (§4.3); unsigned variants are used for raw/dimension attributes.
enum class ValueType : std::uint8_t {
  kInt32 = 0,
  kUInt32 = 1,
  kInt64 = 2,
  kUInt64 = 3,
  kFloat = 4,
  kDouble = 5,
};

inline constexpr int kNumValueTypes = 6;

inline std::size_t ValueTypeSize(ValueType t) {
  switch (t) {
    case ValueType::kInt32:
    case ValueType::kUInt32:
    case ValueType::kFloat:
      return 4;
    case ValueType::kInt64:
    case ValueType::kUInt64:
    case ValueType::kDouble:
      return 8;
  }
  return 0;
}

inline const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt32:
      return "int32";
    case ValueType::kUInt32:
      return "uint32";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kUInt64:
      return "uint64";
    case ValueType::kFloat:
      return "float";
    case ValueType::kDouble:
      return "double";
  }
  return "?";
}

inline bool IsFloatingPoint(ValueType t) {
  return t == ValueType::kFloat || t == ValueType::kDouble;
}

/// Tagged scalar used for query constants, aggregation results and record
/// accessors. Conversions widen explicitly via AsDouble()/AsInt64(); there
/// are no implicit cross-type comparisons.
class Value {
 public:
  Value() : type_(ValueType::kInt64) { bits_.i64 = 0; }

  static Value Int32(std::int32_t v) {
    Value x(ValueType::kInt32);
    x.bits_.i32 = v;
    return x;
  }
  static Value UInt32(std::uint32_t v) {
    Value x(ValueType::kUInt32);
    x.bits_.u32 = v;
    return x;
  }
  static Value Int64(std::int64_t v) {
    Value x(ValueType::kInt64);
    x.bits_.i64 = v;
    return x;
  }
  static Value UInt64(std::uint64_t v) {
    Value x(ValueType::kUInt64);
    x.bits_.u64 = v;
    return x;
  }
  static Value Float(float v) {
    Value x(ValueType::kFloat);
    x.bits_.f32 = v;
    return x;
  }
  static Value Double(double v) {
    Value x(ValueType::kDouble);
    x.bits_.f64 = v;
    return x;
  }

  /// A zero of the given type.
  static Value Zero(ValueType t) {
    Value x(t);
    x.bits_.u64 = 0;
    if (t == ValueType::kFloat) x.bits_.f32 = 0.0f;
    if (t == ValueType::kDouble) x.bits_.f64 = 0.0;
    return x;
  }

  ValueType type() const { return type_; }

  std::int32_t i32() const { return bits_.i32; }
  std::uint32_t u32() const { return bits_.u32; }
  std::int64_t i64() const { return bits_.i64; }
  std::uint64_t u64() const { return bits_.u64; }
  float f32() const { return bits_.f32; }
  double f64() const { return bits_.f64; }

  /// Numeric widening for mixed-type arithmetic in query results.
  double AsDouble() const {
    switch (type_) {
      case ValueType::kInt32:
        return static_cast<double>(bits_.i32);
      case ValueType::kUInt32:
        return static_cast<double>(bits_.u32);
      case ValueType::kInt64:
        return static_cast<double>(bits_.i64);
      case ValueType::kUInt64:
        return static_cast<double>(bits_.u64);
      case ValueType::kFloat:
        return static_cast<double>(bits_.f32);
      case ValueType::kDouble:
        return bits_.f64;
    }
    return 0.0;
  }

  std::int64_t AsInt64() const {
    switch (type_) {
      case ValueType::kInt32:
        return bits_.i32;
      case ValueType::kUInt32:
        return bits_.u32;
      case ValueType::kInt64:
        return bits_.i64;
      case ValueType::kUInt64:
        return static_cast<std::int64_t>(bits_.u64);
      case ValueType::kFloat:
        return static_cast<std::int64_t>(bits_.f32);
      case ValueType::kDouble:
        return static_cast<std::int64_t>(bits_.f64);
    }
    return 0;
  }

  /// Reads a Value of type `t` from raw column storage.
  static Value Load(ValueType t, const void* src) {
    Value x(t);
    std::memcpy(&x.bits_, src, ValueTypeSize(t));
    return x;
  }

  /// Writes this value into raw column storage (type width bytes).
  void Store(void* dst) const {
    std::memcpy(dst, &bits_, ValueTypeSize(type_));
  }

  std::string ToString() const;

  /// Exact same-type comparison (bit-level for the active member).
  friend bool operator==(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return false;
    return std::memcmp(&a.bits_, &b.bits_, ValueTypeSize(a.type_)) == 0;
  }

 private:
  explicit Value(ValueType t) : type_(t) { bits_.u64 = 0; }

  union Bits {
    std::int32_t i32;
    std::uint32_t u32;
    std::int64_t i64;
    std::uint64_t u64;
    float f32;
    double f64;
  };

  ValueType type_;
  Bits bits_;
};

}  // namespace aim

#endif  // AIM_SCHEMA_VALUE_H_
