#include "aim/schema/schema.h"

#include <algorithm>

#include "aim/common/logging.h"

namespace aim {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kAvg:
      return "avg";
  }
  return "?";
}

const char* EventMetricName(EventMetric m) {
  switch (m) {
    case EventMetric::kDuration:
      return "duration";
    case EventMetric::kCost:
      return "cost";
    case EventMetric::kDataVolume:
      return "data";
  }
  return "?";
}

const char* CallFilterName(CallFilter f) {
  switch (f) {
    case CallFilter::kAny:
      return "any";
    case CallFilter::kLocal:
      return "local";
    case CallFilter::kLongDistance:
      return "long_distance";
    case CallFilter::kInternational:
      return "international";
    case CallFilter::kRoaming:
      return "roaming";
    case CallFilter::kPreferred:
      return "preferred";
  }
  return "?";
}

std::uint32_t GroupStateSize(const AttributeGroupSpec& spec) {
  switch (spec.window.kind) {
    case WindowKind::kTumbling:
      return sizeof(TumblingState);
    case WindowKind::kSliding:
      return static_cast<std::uint32_t>(
          sizeof(SlidingHeader) + spec.window.num_slots * sizeof(SlidingSlot));
    case WindowKind::kEventBased:
      // Count groups need only the ring header (count = filled); metric
      // groups additionally store the last N metric values.
      return static_cast<std::uint32_t>(
          sizeof(EventRingHeader) +
          (spec.has_metric ? spec.window.num_slots * sizeof(float) : 0));
  }
  return 0;
}

std::uint16_t Schema::AddAttribute(const std::string& name, ValueType type,
                                   AttrKind kind, std::uint16_t group_id,
                                   AggFn agg) {
  AIM_CHECK_MSG(!finalized_, "schema already finalized");
  AIM_CHECK_MSG(name_to_attr_.find(name) == name_to_attr_.end(),
                "duplicate attribute name '%s'", name.c_str());
  AIM_CHECK_MSG(attributes_.size() < kInvalidAttr,
                "too many attributes");
  Attribute attr;
  attr.name = name;
  attr.type = type;
  attr.kind = kind;
  attr.group_id = group_id;
  attr.agg = agg;
  const std::uint16_t id = static_cast<std::uint16_t>(attributes_.size());
  attributes_.push_back(std::move(attr));
  name_to_attr_.emplace(name, id);
  if (kind == AttrKind::kIndicator) ++num_indicators_;
  return id;
}

std::uint16_t Schema::AddRawAttribute(const std::string& name,
                                      ValueType type) {
  return AddAttribute(name, type, AttrKind::kRaw, 0xffff, AggFn::kCount);
}

std::uint16_t Schema::AddCountGroup(const std::string& name,
                                    CallFilter filter,
                                    const WindowSpec& window) {
  AIM_CHECK_MSG(!finalized_, "schema already finalized");
  AttributeGroupSpec spec;
  spec.name = name;
  spec.filter = filter;
  spec.window = window;
  spec.has_metric = false;
  const std::uint16_t group_id = static_cast<std::uint16_t>(groups_.size());
  spec.group_id = group_id;
  spec.count_attr = AddAttribute(name, ValueType::kInt32, AttrKind::kIndicator,
                                 group_id, AggFn::kCount);
  groups_.push_back(std::move(spec));
  return group_id;
}

std::uint16_t Schema::AddMetricGroup(const std::string& name_prefix,
                                     CallFilter filter, EventMetric metric,
                                     const WindowSpec& window,
                                     std::uint8_t agg_mask) {
  AIM_CHECK_MSG(!finalized_, "schema already finalized");
  AIM_CHECK_MSG((agg_mask & kAllMetricAggs) != 0,
                "metric group '%s' exposes no aggregates",
                name_prefix.c_str());
  AttributeGroupSpec spec;
  spec.name = name_prefix;
  spec.filter = filter;
  spec.window = window;
  spec.has_metric = true;
  spec.metric = metric;
  const std::uint16_t group_id = static_cast<std::uint16_t>(groups_.size());
  spec.group_id = group_id;

  auto add = [&](AggFn fn, std::uint16_t* slot) {
    if (agg_mask & AggBit(fn)) {
      *slot = AddAttribute(name_prefix + "_" + AggFnName(fn),
                           ValueType::kFloat, AttrKind::kIndicator, group_id,
                           fn);
    }
  };
  add(AggFn::kSum, &spec.sum_attr);
  add(AggFn::kMin, &spec.min_attr);
  add(AggFn::kMax, &spec.max_attr);
  add(AggFn::kAvg, &spec.avg_attr);

  groups_.push_back(std::move(spec));
  return group_id;
}

Status Schema::AddAlias(const std::string& alias, std::uint16_t attr_id) {
  if (attr_id >= attributes_.size()) {
    return Status::InvalidArgument("alias target out of range");
  }
  auto [it, inserted] = name_to_attr_.emplace(alias, attr_id);
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("alias name already in use: " + alias);
  }
  return Status::OK();
}

Status Schema::Finalize() {
  if (finalized_) return Status::InvalidArgument("Finalize called twice");
  if (attributes_.empty()) {
    return Status::InvalidArgument("schema has no attributes");
  }
  for (const AttributeGroupSpec& g : groups_) {
    if (g.window.kind != WindowKind::kEventBased && g.window.length_ms <= 0) {
      return Status::InvalidArgument("group '" + g.name +
                                     "': non-positive window length");
    }
    if (g.window.kind != WindowKind::kTumbling && g.window.num_slots == 0) {
      return Status::InvalidArgument("group '" + g.name + "': zero slots");
    }
  }

  // Attribute area: lay out 8-byte attributes first, then 4-byte ones, so
  // everything stays naturally aligned without padding holes.
  std::uint32_t offset = 0;
  for (Attribute& a : attributes_) {
    if (ValueTypeSize(a.type) == 8) {
      a.row_offset = offset;
      offset += 8;
    }
  }
  for (Attribute& a : attributes_) {
    if (ValueTypeSize(a.type) == 4) {
      a.row_offset = offset;
      offset += 4;
    }
  }
  // State area, 8-byte aligned blocks (TumblingState/SlidingHeader start
  // with an int64).
  offset = (offset + 7u) & ~7u;
  state_area_offset_ = offset;
  for (AttributeGroupSpec& g : groups_) {
    g.state_offset = offset;
    g.state_size = GroupStateSize(g);
    offset += (g.state_size + 7u) & ~7u;
  }
  record_size_ = offset;
  finalized_ = true;
  return Status::OK();
}

std::uint16_t Schema::FindAttribute(const std::string& name) const {
  auto it = name_to_attr_.find(name);
  return it == name_to_attr_.end() ? kInvalidAttr : it->second;
}

}  // namespace aim
