#ifndef AIM_SCHEMA_SCHEMA_H_
#define AIM_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "aim/common/status.h"
#include "aim/schema/value.h"
#include "aim/schema/window.h"

namespace aim {

/// Aggregation functions of the update kernel (paper §4.3).
enum class AggFn : std::uint8_t {
  kCount = 0,
  kSum = 1,
  kMin = 2,
  kMax = 3,
  kAvg = 4,
};

const char* AggFnName(AggFn fn);

/// Numeric event properties that indicators aggregate over. Extracted from
/// a CDR event as float (see esp/update_kernel.h).
enum class EventMetric : std::uint8_t {
  kDuration = 0,    // call duration in seconds
  kCost = 1,        // call cost
  kDataVolume = 2,  // data usage in MB
};

inline constexpr int kNumEventMetrics = 3;
const char* EventMetricName(EventMetric m);

/// Event subsets an indicator is restricted to (the paper's "local /
/// long-distance call, preferred number" event properties). kPreferred
/// matches events whose callee equals the entity's preferred number — a
/// record-dependent filter, which is why update functions get the record.
enum class CallFilter : std::uint8_t {
  kAny = 0,
  kLocal = 1,
  kLongDistance = 2,
  kInternational = 3,
  kRoaming = 4,
  kPreferred = 5,
};

inline constexpr int kNumCallFilters = 6;
const char* CallFilterName(CallFilter f);

/// What an attribute (column) of the Analytics Matrix is.
enum class AttrKind : std::uint8_t {
  kRaw = 0,        // profile / dimension FK / system attribute, set directly
  kIndicator = 1,  // event-maintained aggregate, owned by a group
};

inline constexpr std::uint16_t kInvalidAttr = 0xffff;

/// One column of the Analytics Matrix.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt32;
  AttrKind kind = AttrKind::kRaw;
  std::uint32_t row_offset = 0;   // byte offset inside the row-format record
  std::uint16_t group_id = 0xffff;  // owning group (indicators only)
  AggFn agg = AggFn::kCount;        // which aggregate (indicators only)
};

/// One attribute group: either a count group (counts events matching
/// `filter` in `window`) or a metric group (maintains sum/min/max/avg of one
/// metric for matching events). Groups own a contiguous state block inside
/// the record; the compiled update function (esp/update_kernel) maintains
/// the state and refreshes the group's exposed indicator columns.
struct AttributeGroupSpec {
  std::string name;
  CallFilter filter = CallFilter::kAny;
  WindowSpec window;
  bool has_metric = false;  // false => count-only group
  EventMetric metric = EventMetric::kDuration;

  // Which aggregates this group exposes, and the corresponding attribute id
  // for each (kInvalidAttr when the aggregate is not exposed). Count groups
  // use only `count_attr`.
  std::uint16_t count_attr = kInvalidAttr;
  std::uint16_t sum_attr = kInvalidAttr;
  std::uint16_t min_attr = kInvalidAttr;
  std::uint16_t max_attr = kInvalidAttr;
  std::uint16_t avg_attr = kInvalidAttr;

  // Assigned by Schema::Finalize().
  std::uint16_t group_id = 0;
  std::uint32_t state_offset = 0;  // byte offset of state block in the row
  std::uint32_t state_size = 0;
};

/// Schema of the Analytics Matrix: raw attributes plus attribute groups.
/// Build once (AddRawAttribute / AddCountGroup / AddMetricGroup), call
/// Finalize() to assign the record layout, then treat as immutable. The
/// paper assumes the initial schema is known at creation time (§2.1).
///
/// Record layout (row format, used in the delta and on the wire):
///   [attribute values, each at attr.row_offset] [group state blocks]
/// The PAX main (storage/column_map.h) re-arranges attributes column-wise
/// per bucket and keeps state blocks row-wise.
class Schema {
 public:
  Schema() = default;

  Schema(const Schema&) = delete;
  Schema& operator=(const Schema&) = delete;
  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  /// Adds a raw (profile/dimension) attribute. Returns its attribute id.
  std::uint16_t AddRawAttribute(const std::string& name, ValueType type);

  /// Adds a count group exposing one kInt32 indicator named `name`.
  /// Returns the group id.
  std::uint16_t AddCountGroup(const std::string& name, CallFilter filter,
                              const WindowSpec& window);

  /// Adds a metric group. `agg_mask` selects which of sum/min/max/avg to
  /// expose (bit per AggFn, e.g. AggBit(AggFn::kSum) | AggBit(AggFn::kAvg)).
  /// Indicator columns are named "<name_prefix>_<agg>" unless an explicit
  /// name is registered later via AddAlias(). Returns the group id.
  std::uint16_t AddMetricGroup(const std::string& name_prefix,
                               CallFilter filter, EventMetric metric,
                               const WindowSpec& window,
                               std::uint8_t agg_mask);

  static constexpr std::uint8_t AggBit(AggFn fn) {
    return static_cast<std::uint8_t>(1u << static_cast<unsigned>(fn));
  }
  static constexpr std::uint8_t kAllMetricAggs =
      (1u << static_cast<unsigned>(AggFn::kSum)) |
      (1u << static_cast<unsigned>(AggFn::kMin)) |
      (1u << static_cast<unsigned>(AggFn::kMax)) |
      (1u << static_cast<unsigned>(AggFn::kAvg));

  /// Registers an alternative lookup name for an attribute (used to expose
  /// paper-style names like "total_duration_this_week").
  Status AddAlias(const std::string& alias, std::uint16_t attr_id);

  /// Computes the record layout. Must be called exactly once, after which
  /// the schema is immutable.
  Status Finalize();
  bool finalized() const { return finalized_; }

  /// Total row-format record size in bytes (attributes + state blocks).
  std::uint32_t record_size() const { return record_size_; }
  /// Byte offset where group state blocks start (= end of attribute area).
  std::uint32_t state_area_offset() const { return state_area_offset_; }
  std::uint32_t state_area_size() const {
    return record_size_ - state_area_offset_;
  }

  std::uint16_t num_attributes() const {
    return static_cast<std::uint16_t>(attributes_.size());
  }
  const Attribute& attribute(std::uint16_t id) const {
    return attributes_[id];
  }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  std::uint16_t num_groups() const {
    return static_cast<std::uint16_t>(groups_.size());
  }
  const AttributeGroupSpec& group(std::uint16_t id) const {
    return groups_[id];
  }
  const std::vector<AttributeGroupSpec>& groups() const { return groups_; }

  /// Name (or alias) lookup. Returns kInvalidAttr if absent.
  std::uint16_t FindAttribute(const std::string& name) const;

  /// Number of indicator columns (the paper's "546 indicators" count).
  std::uint32_t num_indicators() const { return num_indicators_; }

 private:
  std::uint16_t AddAttribute(const std::string& name, ValueType type,
                             AttrKind kind, std::uint16_t group_id, AggFn agg);

  std::vector<Attribute> attributes_;
  std::vector<AttributeGroupSpec> groups_;
  std::unordered_map<std::string, std::uint16_t> name_to_attr_;
  std::uint32_t record_size_ = 0;
  std::uint32_t state_area_offset_ = 0;
  std::uint32_t num_indicators_ = 0;
  bool finalized_ = false;
};

/// State block layouts maintained by the update kernel. These are plain
/// PODs overlaid on the record's state area; layouts are part of the
/// storage format.
///
/// Tumbling window state.
struct TumblingState {
  std::int64_t window_start;  // start of the current window, 0 = never hit
  std::int32_t count;         // events in the current window
  float sum;                  // metric groups only (unused in count groups)
  float min;                  // valid iff count > 0
  float max;                  // valid iff count > 0
};
static_assert(sizeof(TumblingState) == 24);

/// One pane of a sliding window.
struct SlidingSlot {
  std::int32_t count;
  float sum;
  float min;  // valid iff count > 0
  float max;  // valid iff count > 0
};
static_assert(sizeof(SlidingSlot) == 16);

/// Sliding window state: header + WindowSpec::num_slots panes.
struct SlidingHeader {
  std::int64_t last_slot_start;  // slot-aligned ts of the newest pane
};
static_assert(sizeof(SlidingHeader) == 8);

/// Event-based window state: header + num_slots float values (ring buffer
/// of the last N matching metric values; count groups store no values).
struct EventRingHeader {
  std::uint32_t pos;     // next write position
  std::uint32_t filled;  // number of valid entries (saturates at N)
};
static_assert(sizeof(EventRingHeader) == 8);

/// Size of one group's state block given its spec (before Finalize).
std::uint32_t GroupStateSize(const AttributeGroupSpec& spec);

}  // namespace aim

#endif  // AIM_SCHEMA_SCHEMA_H_
