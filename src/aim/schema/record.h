#ifndef AIM_SCHEMA_RECORD_H_
#define AIM_SCHEMA_RECORD_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "aim/common/logging.h"
#include "aim/common/types.h"
#include "aim/schema/schema.h"
#include "aim/schema/value.h"

namespace aim {

/// Typed view over one row-format Entity Record. Does not own the bytes.
/// Used wherever a whole record is handled row-at-a-time: the delta, the
/// ESP engine (Get → update → Put), and record materialization from the
/// PAX main.
class RecordView {
 public:
  RecordView(const Schema* schema, std::uint8_t* data)
      : schema_(schema), data_(data) {}

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  const Schema& schema() const { return *schema_; }

  Value Get(std::uint16_t attr_id) const {
    const Attribute& a = schema_->attribute(attr_id);
    return Value::Load(a.type, data_ + a.row_offset);
  }

  void Set(std::uint16_t attr_id, const Value& v) {
    const Attribute& a = schema_->attribute(attr_id);
    AIM_DCHECK(v.type() == a.type);
    v.Store(data_ + a.row_offset);
  }

  /// Unchecked typed accessors for hot paths (type must match the schema).
  template <typename T>
  T GetAs(std::uint16_t attr_id) const {
    T v;
    std::memcpy(&v, data_ + schema_->attribute(attr_id).row_offset, sizeof(T));
    return v;
  }

  template <typename T>
  void SetAs(std::uint16_t attr_id, T v) {
    std::memcpy(data_ + schema_->attribute(attr_id).row_offset, &v, sizeof(T));
  }

  /// Pointer to a group's state block.
  std::uint8_t* GroupState(std::uint16_t group_id) {
    return data_ + schema_->group(group_id).state_offset;
  }
  const std::uint8_t* GroupState(std::uint16_t group_id) const {
    return data_ + schema_->group(group_id).state_offset;
  }

 private:
  const Schema* schema_;
  std::uint8_t* data_;
};

/// Read-only variant.
class ConstRecordView {
 public:
  ConstRecordView(const Schema* schema, const std::uint8_t* data)
      : schema_(schema), data_(data) {}

  const std::uint8_t* data() const { return data_; }
  const Schema& schema() const { return *schema_; }

  Value Get(std::uint16_t attr_id) const {
    const Attribute& a = schema_->attribute(attr_id);
    return Value::Load(a.type, data_ + a.row_offset);
  }

  template <typename T>
  T GetAs(std::uint16_t attr_id) const {
    T v;
    std::memcpy(&v, data_ + schema_->attribute(attr_id).row_offset, sizeof(T));
    return v;
  }

  const std::uint8_t* GroupState(std::uint16_t group_id) const {
    return data_ + schema_->group(group_id).state_offset;
  }

 private:
  const Schema* schema_;
  const std::uint8_t* data_;
};

/// Owning row-format record buffer. Zero-initialized: all indicator values
/// read 0 and all window state reads "never hit", which is the correct
/// initial state for a fresh entity.
class RecordBuffer {
 public:
  explicit RecordBuffer(const Schema* schema)
      : schema_(schema), bytes_(schema->record_size(), 0) {}

  RecordView view() { return RecordView(schema_, bytes_.data()); }
  ConstRecordView const_view() const {
    return ConstRecordView(schema_, bytes_.data());
  }

  std::uint8_t* data() { return bytes_.data(); }
  const std::uint8_t* data() const { return bytes_.data(); }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(bytes_.size());
  }

  void Clear() { std::memset(bytes_.data(), 0, bytes_.size()); }

  void CopyFrom(const std::uint8_t* src) {
    std::memcpy(bytes_.data(), src, bytes_.size());
  }

 private:
  const Schema* schema_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace aim

#endif  // AIM_SCHEMA_RECORD_H_
