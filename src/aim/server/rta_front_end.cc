#include "aim/server/rta_front_end.h"

#include "aim/common/clock.h"

namespace aim {

QueryResult RtaFrontEnd::Execute(const Query& query) const {
  Stopwatch e2e_timer;
  BinaryWriter writer;
  query.Serialize(&writer);
  const std::vector<std::uint8_t> wire = writer.TakeBuffer();

  // Fan out; replies land in this call's own queue. shared_ptr keeps the
  // queue alive even if a late reply races with our return path.
  auto replies =
      std::make_shared<MpscQueue<std::vector<std::uint8_t>>>();
  std::size_t submitted = 0;
  for (NodeChannel* node : channels_) {
    const bool ok = node->SubmitQuery(
        wire, [replies](std::vector<std::uint8_t>&& bytes) {
          replies->Push(std::move(bytes));
        });
    if (ok) ++submitted;
  }
  if (submitted == 0) {
    QueryResult result;
    result.query_id = query.id;
    result.status = Status::Shutdown("no storage node accepted the query");
    return result;
  }

  // Collect and merge (result-merging cost grows with the node count —
  // the overhead the paper's Figure 11 discussion calls out).
  PartialResult merged;
  bool have_any = false;
  for (std::size_t i = 0; i < submitted; ++i) {
    std::optional<std::vector<std::uint8_t>> bytes = replies->Pop();
    if (!bytes.has_value() || bytes->empty()) continue;  // shutdown reply
    BinaryReader reader(*bytes);
    StatusOr<PartialResult> partial = PartialResult::Deserialize(&reader);
    if (!partial.ok()) continue;
    if (!have_any) {
      merged = std::move(partial).value();
      have_any = true;
    } else {
      merged.MergeFrom(partial.value(), query);
    }
  }
  QueryResult result = FinalizeResult(query, dims_, std::move(merged));
  if (e2e_latency_ != nullptr) {
    e2e_latency_->Record(e2e_timer.ElapsedMicros());
    e2e_queries_->Add();
  }
  return result;
}

}  // namespace aim
