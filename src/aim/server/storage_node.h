#ifndef AIM_SERVER_STORAGE_NODE_H_
#define AIM_SERVER_STORAGE_NODE_H_

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "aim/common/buffer_pool.h"
#include "aim/common/mpsc_queue.h"
#include "aim/common/status.h"
#include "aim/esp/esp_engine.h"
#include "aim/obs/freshness_tracer.h"
#include "aim/obs/kpi_monitor.h"
#include "aim/obs/registry.h"
#include "aim/net/message.h"
#include "aim/rta/compiled_query.h"
#include "aim/rta/dimension.h"
#include "aim/rta/scan_pool.h"
#include "aim/rta/shared_scan.h"
#include "aim/storage/delta_main.h"
#include "aim/storage/event_log.h"
#include "aim/storage/swap_handshake.h"

namespace aim {

/// One AIM storage server (paper §4.2 and Figure 8): hosts `n` data
/// partitions of the Analytics Matrix, each with its own delta-main store
/// and a dedicated RTA scan thread, plus `s` ESP service threads that own
/// the deltas of the partitions assigned to them (partition p is served by
/// ESP thread p mod s — the paper's k = n/s assignment).
///
/// Deployment matches the paper's measured configuration (§4.2 option b):
/// ESP processing runs on the storage node itself, receiving 64-byte events
/// instead of shipping 3 KB records over the network. Dimension tables and
/// the business rule set are replicated per node (§3.4).
///
/// RTA processing: incoming queries queue up; the scan threads batch them
/// (bounded by Options::max_query_batch), start each scan cycle together
/// (intra-node consistency, §4.8) and interleave merge steps between scans
/// (Figure 6). The coordinator thread merges the per-partition partials and
/// replies with one node-level partial per query.
class StorageNode {
 public:
  struct Options {
    NodeId node_id = 0;
    std::uint32_t num_partitions = 5;  // n: RTA scan threads
    std::uint32_t num_esp_threads = 1;  // s
    std::uint32_t bucket_size = ColumnMap::kDefaultBucketSize;
    std::uint64_t max_records_per_partition = 1u << 20;
    std::uint32_t max_query_batch = 8;
    /// How long the RTA coordinator waits for queries before running a
    /// merge-only cycle (bounds t_fresh when the query queue is empty).
    std::int64_t scan_poll_micros = 500;
    /// ESP idle poll interval (the service loop must keep reaching its
    /// checkpoint even without traffic, or delta switches would stall).
    std::int64_t esp_idle_micros = 100;
    /// Upper bound on events an ESP thread drains and hands to
    /// EspEngine::ProcessBatch per wakeup. Bounds both the latency any
    /// single event can hide behind and the time between delta-switch
    /// checkpoints under load (docs/DESIGN.md, "Ingest batching").
    std::uint32_t max_event_batch = 64;
    /// Workers in the node-wide scan pool. 0 (the default) keeps the
    /// original model — each partition's RTA thread scans alone. With
    /// N > 0 the node starts one persistent ScanPool of N workers and
    /// every partition's scan step is decomposed into bucket-range
    /// morsels executed cooperatively by the pool and the partition's
    /// RTA thread; the RTA thread still owns compilation, the partial
    /// merge, and the delta-merge/checkpoint protocol. Worthwhile only
    /// when cores outnumber partitions (docs/DESIGN.md, "Scan
    /// parallelism").
    std::uint32_t scan_pool_threads = 0;
    /// Buckets per scan-pool morsel (granularity of work stealing).
    std::uint32_t scan_morsel_buckets = 8;
    /// Registry the node's metrics live in. When null the node owns a
    /// private one. Series are distinguished by a node="<id>" label, so
    /// one registry can serve a whole cluster (see AimCluster).
    MetricsRegistry* metrics = nullptr;
    EspEngine::Options esp;

    /// Durability (docs/DURABILITY.md). With an empty `dir` the node runs
    /// exactly as before: no log, no checkpoints, no recovery.
    struct DurabilityOptions {
      /// Data directory. Each partition keeps its event log and checkpoint
      /// chain in `<dir>/p<partition>/`. Setting this requires calling
      /// Recover() before Start().
      std::string dir;
      /// Group-commit interval: how long event acknowledgements may be
      /// deferred so one fsync covers more appended batches. 0 syncs (and
      /// acks) at every ESP wakeup that appended something; idle wakeups
      /// always flush regardless, so the interval only batches under load.
      std::int64_t group_commit_micros = 0;
    };
    DurabilityOptions durability;
  };

  /// Legacy aggregate view over the registry-backed metrics (the registry
  /// is the source of truth; this struct exists for call sites that want
  /// the six headline numbers without naming metrics). Snapshot-on-read:
  /// fields may be mutually torn, each value is itself exact.
  struct NodeStats {
    std::uint64_t events_processed = 0;
    std::uint64_t txn_conflicts = 0;
    std::uint64_t rules_fired = 0;
    std::uint64_t queries_processed = 0;
    std::uint64_t scan_cycles = 0;
    std::uint64_t records_merged = 0;
  };

  /// All pointers must outlive the node. `rules` may be empty.
  StorageNode(const Schema* schema, const DimensionCatalog* dims,
              const std::vector<Rule>* rules, const Options& options);
  ~StorageNode();

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  /// Pre-start bulk load of one entity (routes to its partition's main).
  Status BulkLoad(EntityId entity, const std::uint8_t* row);

  // ------------------------------------------------------------------
  // Durability (only with Options::durability.dir set).
  // ------------------------------------------------------------------

  bool durable() const { return !options_.durability.dir.empty(); }

  struct RecoveryStats {
    bool cold_start = true;  // no partition had a usable checkpoint or log
    std::uint64_t checkpoints_applied = 0;  // chain files restored
    std::uint64_t records_restored = 0;     // checkpoint records loaded
    std::uint64_t batches_replayed = 0;     // log records re-run
    std::uint64_t events_replayed = 0;
    std::uint64_t record_ops_replayed = 0;
    std::uint64_t tmp_files_swept = 0;      // orphaned *.tmp removed
  };

  /// Restores every partition from its checkpoint chain, replays each
  /// partition's event log from the chain tip's recorded offset through
  /// the partition's own ESP engine (replay order == original apply
  /// order), and opens the logs for appending (truncating torn tails).
  /// Must be called exactly once, before Start() and before any BulkLoad
  /// (cold start is reported, not populated: the caller bulk-loads and
  /// then writes the initial checkpoint via CheckpointNow()).
  StatusOr<RecoveryStats> Recover();

  /// Writes one checkpoint per partition with the threads stopped (initial
  /// checkpoint after a cold-start load; final checkpoint after Stop()).
  Status CheckpointNow();

  /// Asks every partition's RTA thread to write a checkpoint at its next
  /// safe point (between scan/merge cycles, serialized inside the ESP
  /// batch-boundary window). Returns immediately; track completion via
  /// checkpoints_completed().
  void RequestCheckpoint();

  /// Cumulative partition checkpoints committed since construction.
  std::uint64_t checkpoints_completed() const {
    return checkpoints_completed_.load(std::memory_order_acquire);
  }

  /// "<durability.dir>/p<partition>".
  std::string PartitionDir(std::uint32_t p) const;

  /// Starts the ESP service threads and RTA scan threads.
  Status Start();
  /// Stops and joins all threads. Pending queries get empty replies.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Enqueues a serialized event (64-byte wire format). Returns false after
  /// shutdown. `completion` may be null.
  bool SubmitEvent(std::vector<std::uint8_t> event_bytes,
                   EventCompletion* completion);

  /// Batched enqueue: splits `batch` into contiguous runs that route to
  /// the same ESP thread and admits each run with a single queue
  /// operation. Returns how many events were accepted — always a prefix
  /// of `batch` (on shutdown the remainder is neither queued nor
  /// completed, exactly like a false return from SubmitEvent).
  std::size_t SubmitEventBatch(std::vector<EventMessage>&& batch);

  /// Pool backing the node's event byte buffers: the ESP loops release
  /// processed 64-byte wire buffers here, and submit paths that serialize
  /// events (cluster ingest, benches) can Acquire to avoid a fresh
  /// allocation per event. Using it is optional — SubmitEvent accepts any
  /// vector.
  BufferPool& event_buffer_pool() { return event_buffers_; }

  /// Enqueues a serialized query; `reply` receives the node's serialized
  /// PartialResult (empty payload on shutdown).
  bool SubmitQuery(std::vector<std::uint8_t> query_bytes,
                   std::function<void(std::vector<std::uint8_t>&&)> reply);

  /// Record-level Get/Put service for a remote ESP tier (paper §4.2
  /// deployment option a). Routed to the entity's owning ESP service
  /// thread; must not be mixed with SubmitEvent traffic for the same
  /// entities (two writers would race).
  bool SubmitRecordRequest(RecordRequest request);

  /// Which partition an entity lives in (two-level routing, §4.8).
  std::uint32_t PartitionOf(EntityId entity) const;

  NodeStats stats() const;

  /// The registry carrying every metric of this node (always-on).
  MetricsRegistry& metrics() const { return *metrics_; }

  /// Builds a live Table-4 SLA monitor over this node's metrics —
  /// including the traced (not inferred) t_fresh distribution. `entities`
  /// scales the f_ESP target (events per entity per hour). The returned
  /// monitor borrows the node's metrics; it must not outlive the node.
  KpiMonitor MakeKpiMonitor(std::uint64_t entities,
                            const KpiTargets& targets = {}) const;

  /// Appends this node's monitor inputs (for cluster-level aggregation).
  void CollectMonitorInputs(KpiMonitor::Inputs* inputs) const;

  const Options& options() const { return options_; }
  const Schema& schema() const { return *schema_; }
  const DeltaMainStore& partition(std::uint32_t p) const {
    return *partitions_[p];
  }
  std::uint64_t total_records() const;

 private:
  struct EspThreadState {
    MpscQueue<EventMessage> queue;
    MpscQueue<RecordRequest> record_queue;
    std::vector<std::uint32_t> owned_partitions;
    std::vector<std::unique_ptr<EspEngine>> engines;  // parallel to owned
    Gauge* queue_depth = nullptr;  // sampled periodically, not per event
    std::thread thread;
    // Durability: completions processed but awaiting their covering fsync
    // (ack-after-fsync), the per-engine append high-water marks one Sync
    // must reach (0 = nothing pending), and the last flush time the
    // group-commit interval is measured from.
    std::vector<EventCompletion*> pending_acks;
    std::vector<EventLog::Lsn> pending_sync_lsn;  // parallel to engines
    std::int64_t last_flush_nanos = 0;
  };

  void ServeRecordRequest(RecordRequest& request);
  /// Logs one successful record-service mutation and syncs before the
  /// caller sends the reply (the record tier's ack-after-fsync point).
  void LogRecordOp(std::uint32_t p, LogPayloadView::Kind kind,
                   const RecordRequest& request);
  /// Syncs every log with pending appends, then releases the deferred
  /// acknowledgements. The ack-after-fsync point: an event's submitter
  /// observes done only after the record holding it is durable.
  void FlushPendingAcks(EspThreadState* state);
  void ReplayPartitionLog(std::uint32_t p, std::uint64_t from,
                          RecoveryStats* stats);
  /// One partition's live checkpoint: serialize inside the ESP
  /// batch-boundary window, commit (fsync) outside it.
  void WritePartitionCheckpoint(std::uint32_t partition_id);

  void EspLoop(EspThreadState* state);
  void RtaLoop(std::uint32_t partition_id);

  // Coordinator-side batch management (RTA thread 0).
  void FillBatch();
  void MergeAndReply();

  const Schema* schema_;
  const DimensionCatalog* dims_;
  const std::vector<Rule>* rules_;
  Options options_;
  SystemAttrs sys_attrs_;

  std::vector<std::unique_ptr<DeltaMainStore>> partitions_;
  std::vector<std::unique_ptr<EspThreadState>> esp_threads_;
  std::vector<std::thread> rta_threads_;
  std::unique_ptr<ScanPool> scan_pool_;  // only with scan_pool_threads > 0

  // Durability state (sized only when durable()). The batch gate is a
  // second writer-quiescence handshake per partition, acknowledged only at
  // the ESP loop top — a point where every drained event is both applied
  // and appended, so a checkpoint serialized inside the gate's window is
  // exactly the effect of the log prefix [0, end_lsn) it records. (The
  // store's own handshake can park the writer mid-batch, where applied
  // state runs ahead of the log — fine for a delta swap, wrong for a
  // checkpoint cut.)
  std::vector<std::unique_ptr<EventLog>> logs_;               // per partition
  std::vector<std::unique_ptr<SwapHandshake<>>> batch_gates_;  // per partition
  bool recovered_ = false;
  std::atomic<std::uint64_t> checkpoint_seq_{0};
  std::atomic<std::uint64_t> checkpoints_completed_{0};

  MpscQueue<QueryMessage> query_queue_;

  // Per-round shared state (published by the coordinator between barriers).
  std::vector<QueryMessage> batch_;
  std::vector<Query> batch_queries_;
  bool stop_round_ = false;
  // partials_[partition][query in batch]
  std::vector<std::vector<PartialResult>> partials_;

  std::unique_ptr<std::barrier<>> round_barrier_;

  std::atomic<bool> running_{false};

  // Registry-backed metrics (owned by options_.metrics or own_metrics_).
  // ESP-side counters live in the per-partition EspEngines; these are the
  // node-level series (see docs/OBSERVABILITY.md for the full catalogue).
  std::unique_ptr<MetricsRegistry> own_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  BufferPool event_buffers_;
  AtomicHistogram* esp_event_latency_ = nullptr;   // micros, per event
  AtomicHistogram* esp_batch_size_ = nullptr;      // events per ESP wakeup
  Counter* queries_processed_ = nullptr;
  AtomicHistogram* rta_query_latency_ = nullptr;   // micros, queue->reply
  AtomicHistogram* rta_batch_size_ = nullptr;      // queries per scan cycle
  AtomicHistogram* rta_scan_duration_ = nullptr;   // micros, per partition
  Gauge* rta_queue_depth_ = nullptr;
  Counter* scan_cycles_ = nullptr;
  Counter* records_merged_ = nullptr;
  AtomicHistogram* freshness_millis_ = nullptr;    // traced t_fresh
  Counter* log_appends_ = nullptr;                 // log records written
  Counter* log_bytes_ = nullptr;                   // payload+header bytes
  Counter* log_syncs_ = nullptr;                   // group-commit fsyncs
  AtomicHistogram* log_sync_micros_ = nullptr;     // per flush
  Counter* checkpoints_written_ = nullptr;         // per partition commit
  std::vector<std::unique_ptr<FreshnessTracer>> tracers_;  // per partition
};

}  // namespace aim

#endif  // AIM_SERVER_STORAGE_NODE_H_
