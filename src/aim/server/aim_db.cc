#include "aim/server/aim_db.h"

#include "aim/common/clock.h"

namespace aim {

AimDb::AimDb(const Schema* schema, const DimensionCatalog* dims,
             const std::vector<Rule>* rules, const Options& options)
    : schema_(schema),
      dims_(dims),
      rules_(rules != nullptr ? rules : &empty_rules_),
      options_(options),
      metrics_(std::make_unique<MetricsRegistry>()) {
  DeltaMainStore::Options store_opts;
  store_opts.bucket_size = options.bucket_size;
  store_opts.max_records = options.max_records;
  store_ = std::make_unique<DeltaMainStore>(schema, store_opts);

  tracer_ = std::make_unique<FreshnessTracer>(
      metrics_->GetHistogram("aim_fresh_staleness_millis", {}));
  DeltaMainStore::StoreMetrics sm;
  sm.records_merged = metrics_->GetCounter("aim_store_records_merged_total",
                                           {});
  sm.merges = metrics_->GetCounter("aim_store_merges_total", {});
  sm.merge_duration_micros =
      metrics_->GetHistogram("aim_store_merge_duration_micros", {});
  sm.frozen_delta_records =
      metrics_->GetGauge("aim_store_frozen_delta_records", {});
  sm.merge_epoch = metrics_->GetGauge("aim_store_merge_epoch", {});
  sm.tracer = tracer_.get();
  store_->AttachMetrics(sm);

  query_latency_ = metrics_->GetHistogram("aim_rta_query_latency_micros", {});
  queries_ = metrics_->GetCounter("aim_rta_queries_total", {});

  SystemAttrs sys;
  sys.entity_id = schema->FindAttribute("entity_id");
  sys.last_event_ts = schema->FindAttribute("last_event_ts");
  sys.preferred_number = schema->FindAttribute("preferred_number");
  EspEngine::Options engine_opts = options.esp;
  engine_opts.metrics = metrics_.get();
  engine_opts.metric_labels = {};
  engine_ = std::make_unique<EspEngine>(schema, store_.get(), rules_, sys,
                                        engine_opts);
}

QueryResult AimDb::Execute(const Query& query) {
  std::vector<QueryResult> results = ExecuteBatch({query});
  return std::move(results[0]);
}

std::vector<QueryResult> AimDb::ExecuteBatch(
    const std::vector<Query>& queries) {
  Stopwatch batch_timer;
  if (options_.merge_before_query && store_->delta_size() > 0) {
    store_->Merge();
  }

  std::vector<QueryResult> results(queries.size());
  std::vector<CompiledQuery> compiled;
  std::vector<std::size_t> compiled_for;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    StatusOr<CompiledQuery> cq =
        CompiledQuery::Compile(queries[i], schema_, dims_);
    if (!cq.ok()) {
      results[i].query_id = queries[i].id;
      results[i].status = cq.status();
      continue;
    }
    compiled.push_back(std::move(cq).value());
    compiled_for.push_back(i);
  }

  // One shared pass over the main for the whole batch.
  const ColumnMap& main = store_->main();
  const std::uint32_t buckets = main.num_buckets();
  for (std::uint32_t b = 0; b < buckets; ++b) {
    const ColumnMap::BucketRef bucket = main.bucket(b);
    for (CompiledQuery& query : compiled) {
      query.ProcessBucket(main, bucket, &scratch_);
    }
  }

  for (std::size_t ci = 0; ci < compiled.size(); ++ci) {
    const std::size_t qi = compiled_for[ci];
    results[qi] =
        FinalizeResult(queries[qi], dims_, compiled[ci].TakePartial());
  }
  query_latency_->Record(batch_timer.ElapsedMicros());
  queries_->Add(queries.size());
  return results;
}

StatusOr<Value> AimDb::GetAttribute(EntityId entity,
                                    const std::string& attr_name) {
  const std::uint16_t attr = schema_->FindAttribute(attr_name);
  if (attr == kInvalidAttr) {
    return Status::InvalidArgument("unknown attribute: " + attr_name);
  }
  return store_->GetAttribute(entity, attr);
}

}  // namespace aim
