#ifndef AIM_SERVER_RTA_FRONT_END_H_
#define AIM_SERVER_RTA_FRONT_END_H_

#include <memory>
#include <vector>

#include "aim/common/mpsc_queue.h"
#include "aim/rta/dimension.h"
#include "aim/rta/partial_result.h"
#include "aim/rta/query.h"
#include "aim/server/storage_node.h"

namespace aim {

/// Stateless RTA processing node (paper §4.2): takes a query, redirects it
/// to all storage nodes, merges the partial results and finalizes. Several
/// client threads may call Execute() concurrently — each call keeps its own
/// reply queue, mirroring the asynchronous RTA <-> storage communication.
class RtaFrontEnd {
 public:
  /// `nodes` entries must outlive the front-end.
  RtaFrontEnd(std::vector<StorageNode*> nodes, const Schema* schema,
              const DimensionCatalog* dims)
      : nodes_(std::move(nodes)), schema_(schema), dims_(dims) {}

  /// Executes one query across the cluster and returns the final result.
  QueryResult Execute(const Query& query) const;

  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  std::vector<StorageNode*> nodes_;
  const Schema* schema_;
  const DimensionCatalog* dims_;
};

}  // namespace aim

#endif  // AIM_SERVER_RTA_FRONT_END_H_
