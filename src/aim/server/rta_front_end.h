#ifndef AIM_SERVER_RTA_FRONT_END_H_
#define AIM_SERVER_RTA_FRONT_END_H_

#include <memory>
#include <vector>

#include "aim/common/mpsc_queue.h"
#include "aim/net/node_channel.h"
#include "aim/obs/histogram.h"
#include "aim/obs/metric.h"
#include "aim/obs/registry.h"
#include "aim/rta/dimension.h"
#include "aim/rta/partial_result.h"
#include "aim/rta/query.h"
#include "aim/server/local_node_channel.h"
#include "aim/server/storage_node.h"

namespace aim {

/// Stateless RTA processing node (paper §4.2): takes a query, redirects it
/// to all storage nodes, merges the partial results and finalizes. Several
/// client threads may call Execute() concurrently — each call keeps its own
/// reply queue, mirroring the asynchronous RTA <-> storage communication.
class RtaFrontEnd {
 public:
  /// `nodes` entries (and `metrics`, when given) must outlive the
  /// front-end. With a registry the front-end records the client-observed
  /// end-to-end latency (fan-out + slowest node + final merge) — the full
  /// t_RTA, as opposed to the per-node queue->reply component.
  RtaFrontEnd(std::vector<StorageNode*> nodes, const Schema* schema,
              const DimensionCatalog* dims,
              MetricsRegistry* metrics = nullptr)
      : schema_(schema), dims_(dims) {
    owned_channels_.reserve(nodes.size());
    channels_.reserve(nodes.size());
    for (StorageNode* node : nodes) {
      owned_channels_.push_back(std::make_unique<LocalNodeChannel>(node));
      channels_.push_back(owned_channels_.back().get());
    }
    InitMetrics(metrics);
  }

  /// Same, over arbitrary NodeChannels — mixing in-process nodes and
  /// net::TcpClient peers is fine; the fan-out/merge logic is identical.
  /// `channels` entries must outlive the front-end.
  RtaFrontEnd(std::vector<NodeChannel*> channels, const Schema* schema,
              const DimensionCatalog* dims,
              MetricsRegistry* metrics = nullptr)
      : channels_(std::move(channels)), schema_(schema), dims_(dims) {
    InitMetrics(metrics);
  }

  /// Executes one query across the cluster and returns the final result.
  QueryResult Execute(const Query& query) const;

  std::size_t num_nodes() const { return channels_.size(); }

 private:
  void InitMetrics(MetricsRegistry* metrics) {
    if (metrics != nullptr) {
      e2e_latency_ = metrics->GetHistogram("aim_rta_e2e_latency_micros", {});
      e2e_queries_ = metrics->GetShardedCounter("aim_rta_e2e_queries_total",
                                                {});
    }
  }

  std::vector<std::unique_ptr<LocalNodeChannel>> owned_channels_;
  std::vector<NodeChannel*> channels_;
  const Schema* schema_;
  const DimensionCatalog* dims_;
  // Written from concurrent client threads; sharded counter keeps the
  // per-query overhead to one uncontended fetch_add.
  AtomicHistogram* e2e_latency_ = nullptr;
  ShardedCounter* e2e_queries_ = nullptr;
};

}  // namespace aim

#endif  // AIM_SERVER_RTA_FRONT_END_H_
