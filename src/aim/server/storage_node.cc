#include "aim/server/storage_node.h"

#include <chrono>

#include "aim/common/clock.h"
#include "aim/common/hash.h"
#include "aim/common/logging.h"

namespace aim {

namespace {

std::int64_t NowNanos() {
  using namespace std::chrono;
  return duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StorageNode::StorageNode(const Schema* schema, const DimensionCatalog* dims,
                         const std::vector<Rule>* rules,
                         const Options& options)
    : schema_(schema), dims_(dims), rules_(rules), options_(options) {
  AIM_CHECK(options_.num_partitions > 0);
  AIM_CHECK(options_.num_esp_threads > 0);

  sys_attrs_.entity_id = schema_->FindAttribute("entity_id");
  sys_attrs_.last_event_ts = schema_->FindAttribute("last_event_ts");
  sys_attrs_.preferred_number = schema_->FindAttribute("preferred_number");

  DeltaMainStore::Options store_opts;
  store_opts.bucket_size = options_.bucket_size;
  store_opts.max_records = options_.max_records_per_partition;
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    partitions_.push_back(
        std::make_unique<DeltaMainStore>(schema_, store_opts));
  }

  // ESP thread p-mod-s ownership, engines bound per owned partition.
  for (std::uint32_t e = 0; e < options_.num_esp_threads; ++e) {
    auto state = std::make_unique<EspThreadState>();
    for (std::uint32_t p = e; p < options_.num_partitions;
         p += options_.num_esp_threads) {
      state->owned_partitions.push_back(p);
      state->engines.push_back(std::make_unique<EspEngine>(
          schema_, partitions_[p].get(), rules_, sys_attrs_, options_.esp));
    }
    esp_threads_.push_back(std::move(state));
  }

  partials_.resize(options_.num_partitions);
  round_barrier_ = std::make_unique<std::barrier<>>(options_.num_partitions);
}

StorageNode::~StorageNode() {
  if (running()) Stop();
}

std::uint32_t StorageNode::PartitionOf(EntityId entity) const {
  return PartitionHash(entity, options_.node_id, options_.num_partitions);
}

Status StorageNode::BulkLoad(EntityId entity, const std::uint8_t* row) {
  AIM_CHECK_MSG(!running(), "BulkLoad only before Start()");
  return partitions_[PartitionOf(entity)]->BulkInsert(entity, row);
}

Status StorageNode::Start() {
  if (running()) return Status::InvalidArgument("already running");
  running_.store(true, std::memory_order_release);

  for (auto& state : esp_threads_) {
    for (std::uint32_t p : state->owned_partitions) {
      partitions_[p]->set_esp_attached(true);
    }
    EspThreadState* raw = state.get();
    state->thread = std::thread([this, raw] { EspLoop(raw); });
  }
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    rta_threads_.emplace_back([this, p] { RtaLoop(p); });
  }
  return Status::OK();
}

void StorageNode::Stop() {
  if (!running()) return;
  running_.store(false, std::memory_order_release);
  query_queue_.Close();
  for (auto& state : esp_threads_) {
    state->queue.Close();
    state->record_queue.Close();
  }
  for (auto& state : esp_threads_) {
    if (state->thread.joinable()) state->thread.join();
  }
  for (std::thread& t : rta_threads_) {
    if (t.joinable()) t.join();
  }
  rta_threads_.clear();
}

bool StorageNode::SubmitEvent(std::vector<std::uint8_t> event_bytes,
                              EventCompletion* completion) {
  if (!running()) return false;
  // Peek the caller id to route to the owning ESP thread. The 64-byte wire
  // format starts with the caller id (see Event::Serialize).
  if (event_bytes.size() < kEventWireSize) return false;
  EntityId caller;
  std::memcpy(&caller, event_bytes.data(), sizeof(caller));
  const std::uint32_t p = PartitionOf(caller);
  const std::uint32_t e = p % options_.num_esp_threads;
  EventMessage msg;
  msg.bytes = std::move(event_bytes);
  msg.completion = completion;
  return esp_threads_[e]->queue.Push(std::move(msg));
}

bool StorageNode::SubmitQuery(
    std::vector<std::uint8_t> query_bytes,
    std::function<void(std::vector<std::uint8_t>&&)> reply) {
  if (!running()) return false;
  QueryMessage msg;
  msg.bytes = std::move(query_bytes);
  msg.reply = std::move(reply);
  return query_queue_.Push(std::move(msg));
}

bool StorageNode::SubmitRecordRequest(RecordRequest request) {
  if (!running()) return false;
  const std::uint32_t p = PartitionOf(request.entity);
  const std::uint32_t e = p % options_.num_esp_threads;
  return esp_threads_[e]->record_queue.Push(std::move(request));
}

// ---------------------------------------------------------------------------
// ESP service loop (paper Algorithm 7 around EspEngine::ProcessEvent, plus
// the Get/Put record service used by remote ESP tiers).
// ---------------------------------------------------------------------------

void StorageNode::ServeRecordRequest(RecordRequest& request) {
  DeltaMainStore* store = partitions_[PartitionOf(request.entity)].get();
  switch (request.kind) {
    case RecordRequest::Kind::kGet: {
      std::vector<std::uint8_t> row(schema_->record_size());
      Version version = 0;
      Status st = store->Get(request.entity, row.data(), &version);
      if (!st.ok()) row.clear();
      if (request.reply) request.reply(st, std::move(row), version);
      return;
    }
    case RecordRequest::Kind::kPut: {
      Status st = request.row.size() == schema_->record_size()
                      ? store->Put(request.entity, request.row.data(),
                                   request.expected_version)
                      : Status::InvalidArgument("bad record size");
      if (request.reply) {
        request.reply(st, {}, request.expected_version + 1);
      }
      return;
    }
    case RecordRequest::Kind::kInsert: {
      Status st = request.row.size() == schema_->record_size()
                      ? store->Insert(request.entity, request.row.data())
                      : Status::InvalidArgument("bad record size");
      if (request.reply) request.reply(st, {}, 1);
      return;
    }
  }
}

void StorageNode::EspLoop(EspThreadState* state) {
  std::vector<std::uint32_t> fired;
  while (true) {
    // Algorithm 7 line 3-5: acknowledge pending delta switches on every
    // owned partition before (and between) requests.
    for (std::size_t i = 0; i < state->owned_partitions.size(); ++i) {
      partitions_[state->owned_partitions[i]]->EspCheckpoint();
    }

    // Record service first (remote ESP tiers are latency-sensitive: they
    // block synchronously on Get/Put round trips).
    if (std::optional<RecordRequest> req = state->record_queue.TryPop()) {
      ServeRecordRequest(*req);
      continue;
    }

    std::optional<EventMessage> msg = state->queue.TryPop();
    if (!msg.has_value()) {
      if (!running_.load(std::memory_order_acquire) &&
          state->queue.size() == 0 && state->record_queue.size() == 0) {
        break;
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.esp_idle_micros));
      continue;
    }

    BinaryReader reader(msg->bytes);
    Event event = Event::Deserialize(&reader);
    const std::uint32_t p = PartitionOf(event.caller);
    // Find the engine bound to this partition.
    EspEngine* engine = nullptr;
    for (std::size_t i = 0; i < state->owned_partitions.size(); ++i) {
      if (state->owned_partitions[i] == p) {
        engine = state->engines[i].get();
        break;
      }
    }
    AIM_CHECK_MSG(engine != nullptr, "event routed to wrong ESP thread");

    const std::uint64_t conflicts_before = engine->stats().txn_conflicts;
    Status st = engine->ProcessEvent(event, &fired);
    // relaxed: monitoring counters; stats() tolerates torn cross-counter
    // snapshots and needs no ordering with the event data.
    if (st.ok()) {
      events_processed_.fetch_add(1, std::memory_order_relaxed);
      rules_fired_.fetch_add(fired.size(), std::memory_order_relaxed);
    }
    // relaxed: same monitoring-counter rule as above.
    txn_conflicts_.fetch_add(
        engine->stats().txn_conflicts - conflicts_before,
        std::memory_order_relaxed);
    if (msg->completion != nullptr) {
      msg->completion->status = st;
      msg->completion->fired_rules = fired;
      msg->completion->complete_nanos = NowNanos();
      msg->completion->done.store(true, std::memory_order_release);
    }
  }

  // Detach from the handshake so in-flight delta switches can proceed, and
  // fail any record requests that raced with shutdown.
  for (std::uint32_t p : state->owned_partitions) {
    partitions_[p]->set_esp_attached(false);
  }
  while (std::optional<RecordRequest> req = state->record_queue.TryPop()) {
    if (req->reply) req->reply(Status::Shutdown(), {}, 0);
  }
}

// ---------------------------------------------------------------------------
// RTA scan loop (paper Figure 6 + Algorithm 5, coordinated across the
// node's partitions).
// ---------------------------------------------------------------------------

void StorageNode::FillBatch() {
  batch_.clear();
  batch_queries_.clear();
  stop_round_ = false;

  // Wait briefly for work so that idle cycles still merge periodically.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(options_.scan_poll_micros);
  while (batch_.empty()) {
    std::optional<QueryMessage> msg = query_queue_.TryPop();
    if (msg.has_value()) {
      batch_.push_back(std::move(*msg));
      break;
    }
    if (!running_.load(std::memory_order_acquire)) {
      stop_round_ = true;
      return;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // Drain up to the batch cap (shared scan batching, §4.7).
  while (batch_.size() < options_.max_query_batch) {
    std::optional<QueryMessage> msg = query_queue_.TryPop();
    if (!msg.has_value()) break;
    batch_.push_back(std::move(*msg));
  }

  for (QueryMessage& msg : batch_) {
    BinaryReader reader(msg.bytes);
    StatusOr<Query> q = Query::Deserialize(&reader);
    // Malformed queries still occupy a batch slot so reply order holds; the
    // coordinator replies with an empty partial for them.
    batch_queries_.push_back(q.ok() ? std::move(q).value() : Query{});
  }
}

void StorageNode::MergeAndReply() {
  for (std::size_t qi = 0; qi < batch_.size(); ++qi) {
    PartialResult merged = std::move(partials_[0][qi]);
    for (std::uint32_t p = 1; p < options_.num_partitions; ++p) {
      merged.MergeFrom(partials_[p][qi], batch_queries_[qi]);
    }
    BinaryWriter writer;
    merged.Serialize(&writer);
    if (batch_[qi].reply) batch_[qi].reply(writer.TakeBuffer());
    // relaxed: monitoring counter (see EspLoop).
    queries_processed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void StorageNode::RtaLoop(std::uint32_t partition_id) {
  DeltaMainStore* store = partitions_[partition_id].get();
  SharedScan scan(store);
  ScanScratch scratch;

  while (true) {
    if (partition_id == 0) FillBatch();
    round_barrier_->arrive_and_wait();  // batch published
    if (stop_round_) break;

    // Compile and scan this partition for the whole batch (Algorithm 5:
    // bucket-major, query-minor).
    std::vector<CompiledQuery> compiled;
    compiled.reserve(batch_queries_.size());
    std::vector<std::size_t> compiled_for;  // batch index per compiled entry
    for (std::size_t qi = 0; qi < batch_queries_.size(); ++qi) {
      StatusOr<CompiledQuery> cq =
          CompiledQuery::Compile(batch_queries_[qi], schema_, dims_);
      if (cq.ok()) {
        compiled.push_back(std::move(cq).value());
        compiled_for.push_back(qi);
      }
    }
    if (!compiled.empty()) scan.ScanStep(compiled);

    partials_[partition_id].assign(batch_queries_.size(), PartialResult{});
    for (std::size_t ci = 0; ci < compiled.size(); ++ci) {
      partials_[partition_id][compiled_for[ci]] = compiled[ci].TakePartial();
    }

    round_barrier_->arrive_and_wait();  // partials ready
    if (partition_id == 0) MergeAndReply();

    // Merge step: fold the delta into the main before the next scan.
    // relaxed: monitoring counters (see EspLoop).
    if (store->delta_size() > 0) {
      records_merged_.fetch_add(scan.MergeStep(), std::memory_order_relaxed);
    }
    if (partition_id == 0) {
      // relaxed: monitoring counter.
      scan_cycles_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Drain pending replies on shutdown (coordinator only).
  if (partition_id == 0) {
    for (QueryMessage& msg : batch_) {
      if (msg.reply) msg.reply({});
    }
    std::optional<QueryMessage> msg;
    while ((msg = query_queue_.TryPop()).has_value()) {
      if (msg->reply) msg->reply({});
    }
  }
}

StorageNode::NodeStats StorageNode::stats() const {
  NodeStats s;
  // relaxed: monitoring snapshot; counters may be mutually torn.
  s.events_processed = events_processed_.load(std::memory_order_relaxed);
  s.txn_conflicts = txn_conflicts_.load(std::memory_order_relaxed);
  s.rules_fired = rules_fired_.load(std::memory_order_relaxed);
  s.queries_processed = queries_processed_.load(std::memory_order_relaxed);
  s.scan_cycles = scan_cycles_.load(std::memory_order_relaxed);
  s.records_merged = records_merged_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t StorageNode::total_records() const {
  std::uint64_t n = 0;
  for (const auto& p : partitions_) {
    n += p->main_records();
  }
  return n;
}

}  // namespace aim
