#include "aim/server/storage_node.h"

#include <chrono>
#include <cstdio>

#include "aim/common/clock.h"
#include "aim/common/hash.h"
#include "aim/common/logging.h"
#include "aim/common/thread_name.h"
#include "aim/storage/fs_util.h"
#include "aim/storage/recovery.h"

namespace aim {

StorageNode::StorageNode(const Schema* schema, const DimensionCatalog* dims,
                         const std::vector<Rule>* rules,
                         const Options& options)
    : schema_(schema), dims_(dims), rules_(rules), options_(options) {
  AIM_CHECK(options_.num_partitions > 0);
  AIM_CHECK(options_.num_esp_threads > 0);

  sys_attrs_.entity_id = schema_->FindAttribute("entity_id");
  sys_attrs_.last_event_ts = schema_->FindAttribute("last_event_ts");
  sys_attrs_.preferred_number = schema_->FindAttribute("preferred_number");

  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    own_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
  const std::string node_label = std::to_string(options_.node_id);
  const Labels node_labels = {{"node", node_label}};
  esp_event_latency_ =
      metrics_->GetHistogram("aim_esp_event_latency_micros", node_labels);
  esp_batch_size_ =
      metrics_->GetHistogram("aim_esp_batch_size", node_labels);
  queries_processed_ =
      metrics_->GetCounter("aim_rta_queries_total", node_labels);
  rta_query_latency_ =
      metrics_->GetHistogram("aim_rta_query_latency_micros", node_labels);
  rta_batch_size_ =
      metrics_->GetHistogram("aim_rta_batch_size_queries", node_labels);
  rta_scan_duration_ =
      metrics_->GetHistogram("aim_rta_scan_duration_micros", node_labels);
  rta_queue_depth_ =
      metrics_->GetGauge("aim_rta_queue_depth", node_labels);
  scan_cycles_ = metrics_->GetCounter("aim_rta_scan_cycles_total", node_labels);
  records_merged_ =
      metrics_->GetCounter("aim_store_records_merged_total", node_labels);
  freshness_millis_ =
      metrics_->GetHistogram("aim_fresh_staleness_millis", node_labels);
  log_appends_ =
      metrics_->GetCounter("aim_log_appends_total", node_labels);
  log_bytes_ = metrics_->GetCounter("aim_log_bytes_total", node_labels);
  log_syncs_ = metrics_->GetCounter("aim_log_syncs_total", node_labels);
  log_sync_micros_ =
      metrics_->GetHistogram("aim_log_sync_micros", node_labels);
  checkpoints_written_ =
      metrics_->GetCounter("aim_checkpoints_total", node_labels);

  DeltaMainStore::Options store_opts;
  store_opts.bucket_size = options_.bucket_size;
  store_opts.max_records = options_.max_records_per_partition;
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    partitions_.push_back(
        std::make_unique<DeltaMainStore>(schema_, store_opts));

    const Labels part_labels = {{"node", node_label},
                                {"partition", std::to_string(p)}};
    tracers_.push_back(std::make_unique<FreshnessTracer>(freshness_millis_));
    DeltaMainStore::StoreMetrics sm;
    sm.records_merged = records_merged_;
    sm.merges = metrics_->GetCounter("aim_store_merges_total", part_labels);
    sm.merge_duration_micros =
        metrics_->GetHistogram("aim_store_merge_duration_micros", node_labels);
    sm.frozen_delta_records =
        metrics_->GetGauge("aim_store_frozen_delta_records", part_labels);
    sm.merge_epoch =
        metrics_->GetGauge("aim_store_merge_epoch", part_labels);
    sm.tracer = tracers_.back().get();
    partitions_.back()->AttachMetrics(sm);
  }

  // ESP thread p-mod-s ownership, engines bound per owned partition.
  for (std::uint32_t e = 0; e < options_.num_esp_threads; ++e) {
    auto state = std::make_unique<EspThreadState>();
    state->queue_depth = metrics_->GetGauge(
        "aim_esp_queue_depth", {{"node", node_label},
                                {"thread", std::to_string(e)}});
    for (std::uint32_t p = e; p < options_.num_partitions;
         p += options_.num_esp_threads) {
      state->owned_partitions.push_back(p);
      EspEngine::Options engine_opts = options_.esp;
      engine_opts.metrics = metrics_;
      engine_opts.metric_labels = {{"node", node_label},
                                   {"partition", std::to_string(p)}};
      state->engines.push_back(std::make_unique<EspEngine>(
          schema_, partitions_[p].get(), rules_, sys_attrs_, engine_opts));
    }
    esp_threads_.push_back(std::move(state));
  }

  if (durable()) {
    logs_.resize(options_.num_partitions);  // opened by Recover()
    for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
      batch_gates_.push_back(std::make_unique<SwapHandshake<>>());
    }
  }

  if (options_.scan_pool_threads > 0) {
    ScanPool::Options pool_opts;
    pool_opts.num_threads = options_.scan_pool_threads;
    pool_opts.metrics = metrics_;
    pool_opts.node_label = node_label;
    scan_pool_ = std::make_unique<ScanPool>(pool_opts);
  }

  partials_.resize(options_.num_partitions);
  round_barrier_ = std::make_unique<std::barrier<>>(options_.num_partitions);
}

StorageNode::~StorageNode() {
  if (running()) Stop();
}

std::uint32_t StorageNode::PartitionOf(EntityId entity) const {
  return PartitionHash(entity, options_.node_id, options_.num_partitions);
}

Status StorageNode::BulkLoad(EntityId entity, const std::uint8_t* row) {
  AIM_CHECK_MSG(!running(), "BulkLoad only before Start()");
  return partitions_[PartitionOf(entity)]->BulkInsert(entity, row);
}

Status StorageNode::Start() {
  if (running()) return Status::InvalidArgument("already running");
  AIM_CHECK_MSG(!durable() || recovered_,
                "durability enabled: call Recover() before Start()");
  running_.store(true, std::memory_order_release);

  for (auto& state : esp_threads_) {
    for (std::uint32_t p : state->owned_partitions) {
      partitions_[p]->set_esp_attached(true);
      if (durable()) batch_gates_[p]->set_writer_attached(true);
    }
    EspThreadState* raw = state.get();
    state->thread = std::thread([this, raw] { EspLoop(raw); });
  }
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    rta_threads_.emplace_back([this, p] { RtaLoop(p); });
  }
  return Status::OK();
}

void StorageNode::Stop() {
  if (!running()) return;
  running_.store(false, std::memory_order_release);
  query_queue_.Close();
  for (auto& state : esp_threads_) {
    state->queue.Close();
    state->record_queue.Close();
  }
  for (auto& state : esp_threads_) {
    if (state->thread.joinable()) state->thread.join();
  }
  for (std::thread& t : rta_threads_) {
    if (t.joinable()) t.join();
  }
  rta_threads_.clear();
}

bool StorageNode::SubmitEvent(std::vector<std::uint8_t> event_bytes,
                              EventCompletion* completion) {
  if (!running()) return false;
  // Peek the caller id to route to the owning ESP thread. The 64-byte wire
  // format starts with the caller id (see Event::Serialize).
  if (event_bytes.size() < kEventWireSize) return false;
  EntityId caller;
  std::memcpy(&caller, event_bytes.data(), sizeof(caller));
  const std::uint32_t p = PartitionOf(caller);
  const std::uint32_t e = p % options_.num_esp_threads;
  EventMessage msg;
  msg.bytes = std::move(event_bytes);
  msg.completion = completion;
  return esp_threads_[e]->queue.Push(std::move(msg));
}

std::size_t StorageNode::SubmitEventBatch(std::vector<EventMessage>&& batch) {
  if (!running()) return 0;
  const std::size_t n = batch.size();
  std::size_t i = 0;
  while (i < n) {
    if (batch[i].bytes.size() < kEventWireSize) break;
    EntityId caller;
    std::memcpy(&caller, batch[i].bytes.data(), sizeof(caller));
    const std::uint32_t e = PartitionOf(caller) % options_.num_esp_threads;
    // Extend the run while events keep routing to the same ESP thread, so
    // the whole run enters the queue under one lock acquisition.
    std::size_t j = i + 1;
    while (j < n && batch[j].bytes.size() >= kEventWireSize) {
      EntityId next;
      std::memcpy(&next, batch[j].bytes.data(), sizeof(next));
      if (PartitionOf(next) % options_.num_esp_threads != e) break;
      ++j;
    }
    const auto first = batch.begin() + static_cast<std::ptrdiff_t>(i);
    const auto last = batch.begin() + static_cast<std::ptrdiff_t>(j);
    if (!esp_threads_[e]->queue.PushAll(std::make_move_iterator(first),
                                        std::make_move_iterator(last))) {
      break;  // queue closed by Stop: the remainder is rejected as a whole
    }
    i = j;
  }
  return i;
}

bool StorageNode::SubmitQuery(
    std::vector<std::uint8_t> query_bytes,
    std::function<void(std::vector<std::uint8_t>&&)> reply) {
  if (!running()) return false;
  QueryMessage msg;
  msg.bytes = std::move(query_bytes);
  msg.reply = std::move(reply);
  msg.enqueue_nanos = MonotonicNanos();
  return query_queue_.Push(std::move(msg));
}

bool StorageNode::SubmitRecordRequest(RecordRequest request) {
  if (!running()) return false;
  const std::uint32_t p = PartitionOf(request.entity);
  const std::uint32_t e = p % options_.num_esp_threads;
  return esp_threads_[e]->record_queue.Push(std::move(request));
}

// ---------------------------------------------------------------------------
// ESP service loop (paper Algorithm 7 around EspEngine::ProcessEvent, plus
// the Get/Put record service used by remote ESP tiers).
// ---------------------------------------------------------------------------

void StorageNode::ServeRecordRequest(RecordRequest& request) {
  const std::uint32_t p = PartitionOf(request.entity);
  DeltaMainStore* store = partitions_[p].get();
  switch (request.kind) {
    case RecordRequest::Kind::kGet: {
      std::vector<std::uint8_t> row(schema_->record_size());
      Version version = 0;
      Status st = store->Get(request.entity, row.data(), &version);
      if (!st.ok()) row.clear();
      if (request.reply) request.reply(st, std::move(row), version);
      return;
    }
    case RecordRequest::Kind::kPut: {
      Status st = request.row.size() == schema_->record_size()
                      ? store->Put(request.entity, request.row.data(),
                                   request.expected_version)
                      : Status::InvalidArgument("bad record size");
      if (st.ok()) {
        LogRecordOp(p, LogPayloadView::Kind::kRecordPut, request);
      }
      if (request.reply) {
        request.reply(st, {}, request.expected_version + 1);
      }
      return;
    }
    case RecordRequest::Kind::kInsert: {
      Status st = request.row.size() == schema_->record_size()
                      ? store->Insert(request.entity, request.row.data())
                      : Status::InvalidArgument("bad record size");
      if (st.ok()) {
        LogRecordOp(p, LogPayloadView::Kind::kRecordInsert, request);
      }
      if (request.reply) request.reply(st, {}, 1);
      return;
    }
  }
}

// Makes one successful record-service mutation durable before its reply is
// sent (the record tier's ack-after-fsync point). Only successes are
// logged, so a replayed op is expected to succeed again. Record ops are
// synchronous round trips and rare relative to events, so each one syncs
// immediately rather than joining the event group commit.
void StorageNode::LogRecordOp(std::uint32_t p, LogPayloadView::Kind kind,
                              const RecordRequest& request) {
  if (!durable()) return;
  BinaryWriter writer;
  EncodeRecordOpPayload(kind, request.entity, request.expected_version,
                        std::span<const std::uint8_t>(request.row), &writer);
  StatusOr<EventLog::Lsn> lsn = logs_[p]->Append(writer.buffer());
  AIM_CHECK_MSG(lsn.ok(), "event log append failed");
  log_appends_->Add();
  log_bytes_->Add(writer.size());
  Stopwatch sync_timer;
  AIM_CHECK_MSG(logs_[p]->Sync(lsn.value()).ok(), "event log fsync failed");
  log_syncs_->Add();
  log_sync_micros_->Record(sync_timer.ElapsedMicros());
}

void StorageNode::EspLoop(EspThreadState* state) {
  SetCurrentThreadName(
      "aim-esp-", state->owned_partitions.empty()
                      ? 0u
                      : state->owned_partitions[0] % options_.num_esp_threads);
  // Persistent per-loop buffers: drained messages, decoded events and the
  // batch result are reused across wakeups so the steady state allocates
  // nothing per iteration.
  std::vector<EventMessage> events;
  std::vector<RecordRequest> records;
  std::vector<Event> decoded;
  std::vector<std::size_t> engine_of;  // engine index, parallel to decoded
  // Stable per-engine index lists + the contiguous run fed to ProcessBatch.
  std::vector<std::vector<std::size_t>> by_engine(state->engines.size());
  std::vector<Event> run_events;
  EspEngine::BatchResult batch_result;
  std::vector<std::uint8_t> log_scratch;  // reused log payload buffer
  state->pending_sync_lsn.assign(state->engines.size(), 0);
  state->last_flush_nanos = MonotonicNanos();
  std::uint64_t handled = 0;
  const std::size_t max_batch =
      options_.max_event_batch > 0 ? options_.max_event_batch : 1;
  const std::size_t s = options_.num_esp_threads;
  const std::size_t thread_id =
      state->owned_partitions.empty() ? 0 : state->owned_partitions[0] % s;

  while (true) {
    // Algorithm 7 line 3-5: acknowledge pending delta switches on every
    // owned partition before (and between) batches. The batch gate is
    // acknowledged here too — this loop top is the one point where every
    // drained event is both applied and appended, so a checkpoint cut
    // taken inside the gate's window matches the log offset it records.
    for (std::size_t i = 0; i < state->owned_partitions.size(); ++i) {
      partitions_[state->owned_partitions[i]]->EspCheckpoint();
      if (durable()) {
        batch_gates_[state->owned_partitions[i]]->WriterCheckpoint();
      }
    }

    // Record service first (remote ESP tiers are latency-sensitive: they
    // block synchronously on Get/Put round trips).
    records.clear();
    if (state->record_queue.DrainInto(&records) > 0) {
      for (RecordRequest& req : records) ServeRecordRequest(req);
      continue;
    }

    events.clear();
    const std::size_t n = state->queue.DrainInto(&events, max_batch);
    if (n == 0) {
      // Nothing to coalesce with: flush deferred acks before idling (or
      // exiting) so the group-commit interval only adds latency under
      // load, where the next wakeup is imminent anyway.
      if (durable()) FlushPendingAcks(state);
      if (!running_.load(std::memory_order_acquire) &&
          state->queue.size() == 0 && state->record_queue.size() == 0) {
        break;
      }
      state->queue_depth->Set(0);
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.esp_idle_micros));
      continue;
    }
    esp_batch_size_->Record(static_cast<double>(n));
    // Queue-depth sampling is periodic, not per batch: size() takes the
    // queue mutex, which would be an extra lock acquisition per wakeup.
    handled += n;
    if ((handled & 1023) < n) {
      state->queue_depth->Set(static_cast<std::int64_t>(state->queue.size()));
    }

    // Decode up front so the batch loop can group contiguous same-engine
    // runs and feed them to ProcessBatch (which prefetches ahead within
    // the run — docs/DESIGN.md, "Ingest batching & prefetching").
    decoded.clear();
    engine_of.clear();
    for (std::size_t i = 0; i < n; ++i) {
      BinaryReader reader(events[i].bytes);
      decoded.push_back(Event::Deserialize(&reader));
      const std::uint32_t p = PartitionOf(decoded.back().caller);
      AIM_CHECK_MSG(p % s == thread_id, "event routed to wrong ESP thread");
      // Thread t owns partitions {t, t+s, t+2s, ...} in order, so the
      // engine bound to partition p sits at index (p - t) / s.
      engine_of.push_back((p - thread_id) / s);
    }

    // Stable-group by engine: an entity's partition (hence engine) is
    // fixed, so per-entity order is preserved, and engines own disjoint
    // partitions, so reordering across engines cannot change any outcome.
    // Grouping turns a drained batch into maximal ProcessBatch runs even
    // when traffic interleaves this thread's partitions.
    for (std::vector<std::size_t>& idxs : by_engine) idxs.clear();
    for (std::size_t i = 0; i < n; ++i) {
      by_engine[engine_of[i]].push_back(i);
    }

    for (std::size_t e = 0; e < by_engine.size(); ++e) {
      const std::vector<std::size_t>& idxs = by_engine[e];
      if (idxs.empty()) continue;
      run_events.clear();
      for (std::size_t idx : idxs) run_events.push_back(decoded[idx]);

      // Per-event latency (t_ESP's in-process component): deserialize-to-
      // processed, attributed evenly across the run. Counter updates
      // happen inside the engine.
      Stopwatch run_timer;
      state->engines[e]->ProcessBatch(
          std::span<const Event>(run_events.data(), run_events.size()),
          &batch_result);
      const double per_event_micros =
          run_timer.ElapsedMicros() / static_cast<double>(idxs.size());

      if (durable()) {
        // One log record per ProcessBatch run, built from the original
        // wire buffers (apply-then-append: the log only ever contains
        // applied batches, and by the next loop top — where checkpoints
        // cut — applied and appended coincide). Acks wait for the fsync.
        BinaryWriter writer(std::move(log_scratch));
        EncodeEventBatchHeader(static_cast<std::uint32_t>(idxs.size()),
                               kEventWireSize, &writer);
        for (std::size_t idx : idxs) {
          writer.PutBytes(events[idx].bytes.data(), kEventWireSize);
        }
        const std::uint32_t part = state->owned_partitions[e];
        StatusOr<EventLog::Lsn> lsn = logs_[part]->Append(writer.buffer());
        AIM_CHECK_MSG(lsn.ok(), "event log append failed");
        state->pending_sync_lsn[e] = lsn.value();
        log_appends_->Add();
        log_bytes_->Add(writer.size());
        log_scratch = writer.TakeBuffer();
      }

      const bool defer_acks = durable();
      const std::int64_t complete_nanos =
          defer_acks ? 0 : MonotonicNanos();
      for (std::size_t k = 0; k < idxs.size(); ++k) {
        esp_event_latency_->Record(per_event_micros);
        EventMessage& msg = events[idxs[k]];
        if (msg.completion != nullptr) {
          msg.completion->status = batch_result.statuses[k];
          msg.completion->fired_rules = batch_result.fired[k];
          if (defer_acks) {
            // done (and complete_nanos) are set by FlushPendingAcks once
            // the covering fsync lands — ack-after-fsync.
            state->pending_acks.push_back(msg.completion);
          } else {
            msg.completion->complete_nanos = complete_nanos;
            msg.completion->done.store(true, std::memory_order_release);
          }
        }
        event_buffers_.Release(std::move(msg.bytes));
      }
    }

    // Group commit: sync (and ack) now unless the interval says more
    // appends may still pile onto this fsync.
    if (durable()) {
      const std::int64_t interval_nanos =
          options_.durability.group_commit_micros * 1000;
      if (interval_nanos <= 0 ||
          MonotonicNanos() - state->last_flush_nanos >= interval_nanos) {
        FlushPendingAcks(state);
      }
    }
  }

  // Detach from the handshakes so in-flight delta switches (and checkpoint
  // cuts) can proceed, and fail any record requests that raced with
  // shutdown. Deferred acks were flushed on the idle pass that observed
  // shutdown, but flush again for safety: an ack must never be lost.
  if (durable()) FlushPendingAcks(state);
  for (std::uint32_t p : state->owned_partitions) {
    partitions_[p]->set_esp_attached(false);
    if (durable()) batch_gates_[p]->set_writer_attached(false);
  }
  records.clear();
  state->record_queue.DrainInto(&records);
  for (RecordRequest& req : records) {
    if (req.reply) req.reply(Status::Shutdown(), {}, 0);
  }
}

// ---------------------------------------------------------------------------
// Durability: group-commit flush, recovery, checkpoints (docs/DURABILITY.md).
// ---------------------------------------------------------------------------

void StorageNode::FlushPendingAcks(EspThreadState* state) {
  bool any = false;
  for (EventLog::Lsn lsn : state->pending_sync_lsn) any |= lsn != 0;
  if (!any && state->pending_acks.empty()) return;
  if (any) {
    Stopwatch sync_timer;
    for (std::size_t e = 0; e < state->pending_sync_lsn.size(); ++e) {
      const EventLog::Lsn upto = state->pending_sync_lsn[e];
      if (upto == 0) continue;
      const std::uint32_t p = state->owned_partitions[e];
      AIM_CHECK_MSG(logs_[p]->Sync(upto).ok(), "event log fsync failed");
      state->pending_sync_lsn[e] = 0;
      log_syncs_->Add();
    }
    log_sync_micros_->Record(sync_timer.ElapsedMicros());
  }
  const std::int64_t now = MonotonicNanos();
  for (EventCompletion* completion : state->pending_acks) {
    completion->complete_nanos = now;
    completion->done.store(true, std::memory_order_release);
  }
  state->pending_acks.clear();
  state->last_flush_nanos = now;
}

std::string StorageNode::PartitionDir(std::uint32_t p) const {
  return options_.durability.dir + "/p" + std::to_string(p);
}

StatusOr<StorageNode::RecoveryStats> StorageNode::Recover() {
  AIM_CHECK_MSG(durable(), "Recover() requires Options::durability.dir");
  AIM_CHECK_MSG(!running(), "Recover() only before Start()");
  AIM_CHECK_MSG(!recovered_, "Recover() called twice");

  Status st = fs::EnsureDir(options_.durability.dir);
  if (!st.ok()) return st;

  RecoveryStats stats;
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    const std::string dir = PartitionDir(p);
    st = fs::EnsureDir(dir);
    if (!st.ok()) return st;
    // A crash can orphan a checkpoint temporary; sweep before anything
    // else so a stale .tmp never survives into (or past) this run.
    stats.tmp_files_swept += fs::RemoveStaleTmpFiles(dir);

    std::uint64_t replay_from = 0;  // whole log when no checkpoint restores
    StatusOr<checkpoint::ChainTip> tip =
        checkpoint::RecoverChain(dir, partitions_[p].get());
    if (tip.ok()) {
      stats.cold_start = false;
      stats.checkpoints_applied += tip->files_applied;
      stats.records_restored += tip->records_restored;
      replay_from = tip->log_lsn;
    } else if (!tip.status().IsNotFound()) {
      return tip.status();
    }

    // Open (truncating any torn tail) before replaying, so replay sees
    // exactly the prefix future appends will extend.
    logs_[p] = std::make_unique<EventLog>();
    const std::string log_path = dir + "/events.log";
    StatusOr<EventLog::OpenStats> opened = logs_[p]->Open(log_path);
    if (!opened.ok()) return opened.status();
    if (opened->records > 0) stats.cold_start = false;
    ReplayPartitionLog(p, replay_from, &stats);
  }
  recovered_ = true;
  return stats;
}

void StorageNode::ReplayPartitionLog(std::uint32_t p, std::uint64_t from,
                                     RecoveryStats* stats) {
  // Replay through the partition's own engine: the log holds one record
  // per ProcessBatch run, appended in apply order by the single ESP
  // writer, so re-running records in log order reproduces the exact
  // original computation (rule evaluations included).
  const std::uint32_t thread_id = p % options_.num_esp_threads;
  EspEngine* engine =
      esp_threads_[thread_id]
          ->engines[(p - thread_id) / options_.num_esp_threads]
          .get();
  DeltaMainStore* store = partitions_[p].get();
  std::vector<Event> batch;
  EspEngine::BatchResult result;
  StatusOr<EventLog::ReplayStats> replayed = EventLog::Replay(
      PartitionDir(p) + "/events.log", from,
      [&](EventLog::Lsn, std::span<const std::uint8_t> payload) {
        LogPayloadView view;
        if (!DecodeLogPayload(payload, &view).ok()) {
          std::fprintf(stderr,
                       "aim: skipping undecodable log record (partition %u)\n",
                       p);
          return;
        }
        switch (view.kind) {
          case LogPayloadView::Kind::kEventBatch: {
            if (view.event_size != kEventWireSize) {
              std::fprintf(stderr,
                           "aim: skipping log batch with foreign event size "
                           "%u (partition %u)\n",
                           view.event_size, p);
              return;
            }
            batch.clear();
            for (std::uint32_t i = 0; i < view.event_count; ++i) {
              BinaryReader reader(
                  view.events.data() +
                      static_cast<std::size_t>(i) * kEventWireSize,
                  kEventWireSize);
              batch.push_back(Event::Deserialize(&reader));
            }
            engine->ProcessBatch(
                std::span<const Event>(batch.data(), batch.size()), &result);
            ++stats->batches_replayed;
            stats->events_replayed += view.event_count;
            break;
          }
          case LogPayloadView::Kind::kRecordPut:
          case LogPayloadView::Kind::kRecordInsert: {
            // Only successful ops were logged, so failure here means the
            // state diverged (e.g. a mid-chain checkpoint already holds
            // the op) — warn, do not abort recovery.
            Status op =
                view.row.size() == schema_->record_size()
                    ? (view.kind == LogPayloadView::Kind::kRecordPut
                           ? store->Put(view.entity, view.row.data(),
                                        view.expected_version)
                           : store->Insert(view.entity, view.row.data()))
                    : Status::InvalidArgument("bad record size");
            if (!op.ok()) {
              std::fprintf(
                  stderr,
                  "aim: log record op replay failed (partition %u): %s\n", p,
                  op.ToString().c_str());
            }
            ++stats->record_ops_replayed;
            break;
          }
        }
      });
  AIM_CHECK_MSG(replayed.ok(), "event log replay failed");
}

Status StorageNode::CheckpointNow() {
  AIM_CHECK_MSG(durable(), "CheckpointNow() requires durability");
  AIM_CHECK_MSG(!running(), "CheckpointNow() only with the threads stopped; "
                            "use RequestCheckpoint() on a live node");
  AIM_CHECK_MSG(recovered_, "CheckpointNow() only after Recover()");
  for (std::uint32_t p = 0; p < options_.num_partitions; ++p) {
    StatusOr<checkpoint::ChainTip> tip = checkpoint::WriteChained(
        partitions_[p].get(), sys_attrs_.entity_id, PartitionDir(p),
        logs_[p]->end_lsn());
    if (!tip.ok()) return tip.status();
    checkpoints_written_->Add();
    checkpoints_completed_.fetch_add(1, std::memory_order_release);
  }
  return Status::OK();
}

void StorageNode::RequestCheckpoint() {
  // Release pairs with the acquire in RtaLoop: a thread that observes the
  // new sequence also observes everything the requester did before asking.
  checkpoint_seq_.fetch_add(1, std::memory_order_release);
}

void StorageNode::WritePartitionCheckpoint(std::uint32_t partition_id) {
  DeltaMainStore* store = partitions_[partition_id].get();
  // Serialize inside the batch gate's window (ESP parked at a loop top:
  // applied state == log prefix, and end_lsn is exactly that prefix), but
  // commit — the fsync — outside it, so disk latency never extends the
  // writer's park.
  StatusOr<checkpoint::PendingCheckpoint> pending =
      Status::Internal("checkpoint not prepared");
  batch_gates_[partition_id]->RunExclusive([&] {
    pending = checkpoint::PrepareChained(*store, sys_attrs_.entity_id,
                                         PartitionDir(partition_id),
                                         logs_[partition_id]->end_lsn());
  });
  Status st = pending.ok() ? checkpoint::CommitChained(*pending, store)
                           : pending.status();
  if (!st.ok()) {
    // Failure leaves the chain where it was: the epoch did not advance, so
    // the next request retries the same cut. Nothing to roll back.
    std::fprintf(stderr, "aim: checkpoint failed (partition %u): %s\n",
                 partition_id, st.ToString().c_str());
    return;
  }
  checkpoints_written_->Add();
  checkpoints_completed_.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// RTA scan loop (paper Figure 6 + Algorithm 5, coordinated across the
// node's partitions).
// ---------------------------------------------------------------------------

void StorageNode::FillBatch() {
  batch_.clear();
  batch_queries_.clear();
  stop_round_ = false;

  // Wait briefly for work so that idle cycles still merge periodically.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(options_.scan_poll_micros);
  while (batch_.empty()) {
    std::optional<QueryMessage> msg = query_queue_.TryPop();
    if (msg.has_value()) {
      batch_.push_back(std::move(*msg));
      break;
    }
    if (!running_.load(std::memory_order_acquire)) {
      stop_round_ = true;
      return;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // Drain up to the batch cap (shared scan batching, §4.7).
  while (batch_.size() < options_.max_query_batch) {
    std::optional<QueryMessage> msg = query_queue_.TryPop();
    if (!msg.has_value()) break;
    batch_.push_back(std::move(*msg));
  }

  for (QueryMessage& msg : batch_) {
    BinaryReader reader(msg.bytes);
    StatusOr<Query> q = Query::Deserialize(&reader);
    // Malformed queries still occupy a batch slot so reply order holds; the
    // coordinator replies with an empty partial for them.
    batch_queries_.push_back(q.ok() ? std::move(q).value() : Query{});
  }
}

void StorageNode::MergeAndReply() {
  for (std::size_t qi = 0; qi < batch_.size(); ++qi) {
    PartialResult merged = std::move(partials_[0][qi]);
    for (std::uint32_t p = 1; p < options_.num_partitions; ++p) {
      merged.MergeFrom(partials_[p][qi], batch_queries_[qi]);
    }
    BinaryWriter writer;
    merged.Serialize(&writer);
    if (batch_[qi].reply) batch_[qi].reply(writer.TakeBuffer());
    queries_processed_->Add();
    // Queue wait + scan + merge, stamped against the submit time — this is
    // the node-side component of t_RTA.
    rta_query_latency_->Record(
        static_cast<double>(MonotonicNanos() - batch_[qi].enqueue_nanos) /
        1000.0);
  }
}

void StorageNode::RtaLoop(std::uint32_t partition_id) {
  SetCurrentThreadName("aim-rta-", partition_id);
  DeltaMainStore* store = partitions_[partition_id].get();
  SharedScan scan(store);
  std::uint64_t checkpoint_done_seq = 0;

  while (true) {
    if (partition_id == 0) FillBatch();
    round_barrier_->arrive_and_wait();  // batch published
    if (stop_round_) break;
    if (partition_id == 0 && !batch_.empty()) {
      rta_batch_size_->Record(static_cast<double>(batch_.size()));
    }

    // Compile and scan this partition for the whole batch (Algorithm 5:
    // bucket-major, query-minor).
    std::vector<CompiledQuery> compiled;
    compiled.reserve(batch_queries_.size());
    std::vector<std::size_t> compiled_for;  // batch index per compiled entry
    for (std::size_t qi = 0; qi < batch_queries_.size(); ++qi) {
      StatusOr<CompiledQuery> cq =
          CompiledQuery::Compile(batch_queries_[qi], schema_, dims_);
      if (cq.ok()) {
        compiled.push_back(std::move(cq).value());
        compiled_for.push_back(qi);
      }
    }
    partials_[partition_id].assign(batch_queries_.size(), PartialResult{});
    if (!compiled.empty()) {
      Stopwatch scan_timer;
      if (scan_pool_ != nullptr) {
        // Task-queue model: this thread coordinates — the scan step is
        // decomposed into bucket-range morsels executed cooperatively with
        // the pool workers, and the bucket-level partials are merged here.
        // Only the read-only scan is shared; the merge step below stays
        // with this thread (it mutates the main).
        ScanPool::ScanOptions scan_opts;
        scan_opts.morsel_buckets = options_.scan_morsel_buckets;
        std::vector<PartialResult> merged;
        scan_pool_->ScanPartition(store->main(), compiled, scan_opts,
                                  &merged);
        for (std::size_t ci = 0; ci < compiled.size(); ++ci) {
          partials_[partition_id][compiled_for[ci]] = std::move(merged[ci]);
        }
      } else {
        scan.ScanStep(compiled);
        for (std::size_t ci = 0; ci < compiled.size(); ++ci) {
          partials_[partition_id][compiled_for[ci]] =
              compiled[ci].TakePartial();
        }
      }
      rta_scan_duration_->Record(scan_timer.ElapsedMicros());
    }

    round_barrier_->arrive_and_wait();  // partials ready
    if (partition_id == 0) MergeAndReply();

    // Merge step: fold the delta into the main before the next scan. The
    // store's attached StoreMetrics count the merged records and stamp the
    // t_fresh publication point; nothing to add here.
    if (store->delta_size() > 0) {
      scan.MergeStep();
    }

    // Checkpoint service: each partition's RTA thread writes its own
    // partition's checkpoint here — after the merge, so no merge is in
    // flight and the dirty-bucket stamps are settled for this cut.
    if (durable()) {
      // Acquire pairs with the release in RequestCheckpoint.
      const std::uint64_t want =
          checkpoint_seq_.load(std::memory_order_acquire);
      if (want != checkpoint_done_seq) {
        WritePartitionCheckpoint(partition_id);
        checkpoint_done_seq = want;
      }
    }

    if (partition_id == 0) {
      scan_cycles_->Add();
      rta_queue_depth_->Set(static_cast<std::int64_t>(query_queue_.size()));
    }
  }

  // Drain pending replies on shutdown (coordinator only).
  if (partition_id == 0) {
    for (QueryMessage& msg : batch_) {
      if (msg.reply) msg.reply({});
    }
    std::optional<QueryMessage> msg;
    while ((msg = query_queue_.TryPop()).has_value()) {
      if (msg->reply) msg->reply({});
    }
  }
}

StorageNode::NodeStats StorageNode::stats() const {
  NodeStats s;
  // Each Counter::Value() is an exact atomic read; the aggregate across
  // counters is snapshot-on-read (fields may be mutually torn, which is
  // fine for monitoring — the old hand-rolled atomics had the same window).
  for (const auto& state : esp_threads_) {
    for (const auto& engine : state->engines) {
      s.events_processed += engine->metric_events()->Value();
      s.txn_conflicts += engine->metric_txn_conflicts()->Value();
      s.rules_fired += engine->metric_rules_fired()->Value();
    }
  }
  s.queries_processed = queries_processed_->Value();
  s.scan_cycles = scan_cycles_->Value();
  s.records_merged = records_merged_->Value();
  return s;
}

KpiMonitor StorageNode::MakeKpiMonitor(std::uint64_t entities,
                                       const KpiTargets& targets) const {
  KpiMonitor::Inputs inputs;
  inputs.entities = entities;
  CollectMonitorInputs(&inputs);
  return KpiMonitor(inputs, targets);
}

void StorageNode::CollectMonitorInputs(KpiMonitor::Inputs* inputs) const {
  for (const auto& state : esp_threads_) {
    for (const auto& engine : state->engines) {
      inputs->events.push_back(engine->metric_events());
    }
  }
  inputs->esp_latency_micros.push_back(esp_event_latency_);
  inputs->queries.push_back(queries_processed_);
  inputs->rta_latency_micros.push_back(rta_query_latency_);
  inputs->freshness_millis.push_back(freshness_millis_);
}

std::uint64_t StorageNode::total_records() const {
  std::uint64_t n = 0;
  for (const auto& p : partitions_) {
    n += p->main_records();
  }
  return n;
}

}  // namespace aim
