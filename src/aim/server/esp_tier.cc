#include "aim/server/esp_tier.h"

#include <chrono>
#include <cstring>

#include "aim/common/logging.h"
#include "aim/common/thread_name.h"
#include "aim/esp/rule_eval.h"
#include "aim/esp/update_kernel.h"
#include "aim/schema/record.h"
#include "aim/server/local_node_channel.h"

namespace aim {

namespace {

std::int64_t NowNanos() {
  using namespace std::chrono;
  return duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
      .count();
}

/// Synchronous rendezvous for one Get/Put round trip.
struct Rendezvous {
  std::atomic<bool> done{false};
  Status status;
  std::vector<std::uint8_t> row;
  Version version = 0;

  void Complete(Status st, std::vector<std::uint8_t>&& bytes, Version v) {
    status = std::move(st);
    row = std::move(bytes);
    version = v;
    done.store(true, std::memory_order_release);
  }

  /// Bounded wait: false when the reply did not land in time. The slot must
  /// then be abandoned (not reused) — a late completer may still write it.
  bool WaitFor(std::int64_t timeout_millis) const {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_millis);
    while (!done.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::yield();
    }
    return true;
  }

  void Reset() {
    // relaxed: the slot is only reused after Wait() returned.
    done.store(false, std::memory_order_relaxed);
    status = Status::OK();
    row.clear();
    version = 0;
  }
};

}  // namespace

EspTierNode::EspTierNode(const Schema* schema, NodeChannel* channel,
                         const std::vector<Rule>* rules,
                         const Options& options)
    : schema_(schema), channel_(channel), rules_(rules), options_(options) {
  sys_.entity_id = schema_->FindAttribute("entity_id");
  sys_.last_event_ts = schema_->FindAttribute("last_event_ts");
  sys_.preferred_number = schema_->FindAttribute("preferred_number");
  for (std::uint32_t i = 0; i < options_.num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
}

EspTierNode::EspTierNode(const Schema* schema, StorageNode* node,
                         const std::vector<Rule>* rules,
                         const Options& options)
    : EspTierNode(schema, static_cast<NodeChannel*>(nullptr), rules,
                  options) {
  owned_channel_ = std::make_unique<LocalNodeChannel>(node);
  channel_ = owned_channel_.get();
}

EspTierNode::~EspTierNode() { Stop(); }

Status EspTierNode::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("already running");
  }
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker* raw = workers_[i].get();
    raw->index = static_cast<std::uint32_t>(i);
    raw->thread = std::thread([this, raw] { WorkerLoop(raw); });
  }
  return Status::OK();
}

void EspTierNode::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  running_.store(false, std::memory_order_release);
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

bool EspTierNode::SubmitEvent(std::vector<std::uint8_t> event_bytes,
                              EventCompletion* completion) {
  if (!running_.load(std::memory_order_acquire)) return false;
  if (event_bytes.size() < kEventWireSize) return false;
  EntityId caller;
  std::memcpy(&caller, event_bytes.data(), sizeof(caller));
  // Sticky entity -> worker mapping preserves the single-writer discipline
  // across tier workers.
  const std::uint32_t w =
      channel_->PartitionOf(caller) % options_.num_threads;
  EventMessage msg;
  msg.bytes = std::move(event_bytes);
  msg.completion = completion;
  return workers_[w]->queue.Push(std::move(msg));
}

void EspTierNode::WorkerLoop(Worker* worker) {
  SetCurrentThreadName("aim-tier-", worker->index);
  UpdateProgram program(*schema_, sys_.preferred_number);
  RuleEvaluator evaluator(rules_);
  FiringPolicyTracker policy_tracker;
  std::vector<std::uint32_t> matched;
  // Heap slot shared with the reply callback so a timed-out rendezvous can
  // be abandoned to its late completer; reused across events otherwise, so
  // the steady state stays allocation-free.
  auto rendezvous = std::make_shared<Rendezvous>();
  const std::uint32_t record_size = schema_->record_size();
  // Persistent drain buffer: one queue lock acquisition admits up to
  // max_event_batch events; processing (and completion) stays per event.
  std::vector<EventMessage> batch;
  const std::size_t max_batch =
      options_.max_event_batch > 0 ? options_.max_event_batch : 1;

  while (true) {
    batch.clear();
    if (worker->queue.DrainInto(&batch, max_batch) == 0) {
      // Empty: fall back to the blocking Pop, which also detects close.
      std::optional<EventMessage> msg = worker->queue.Pop();
      if (!msg.has_value()) break;  // queue closed and drained
      batch.push_back(std::move(*msg));
    }

    for (EventMessage& queued : batch) {
      BinaryReader reader(queued.bytes);
      const Event event = Event::Deserialize(&reader);

      matched.clear();
      Status result = Status::Conflict("retries exhausted");
      for (int attempt = 0; attempt < options_.max_txn_retries; ++attempt) {
        // Remote Get: the full Entity Record crosses the wire.
        rendezvous->Reset();
        RecordRequest get;
        get.kind = RecordRequest::Kind::kGet;
        get.entity = event.caller;
        get.reply = [rv = rendezvous](Status st,
                                      std::vector<std::uint8_t>&& row,
                                      Version v) {
          rv->Complete(std::move(st), std::move(row), v);
        };
        if (!channel_->SubmitRecordRequest(std::move(get))) {
          result = Status::Shutdown();
          break;
        }
        if (!rendezvous->WaitFor(options_.record_reply_timeout_millis)) {
          result = Status::DeadlineExceeded("record get reply timed out");
          rendezvous = std::make_shared<Rendezvous>();  // abandon the slot
          break;
        }

        bool fresh = false;
        std::vector<std::uint8_t> row;
        Version version = 0;
        if (rendezvous->status.ok()) {
          row = std::move(rendezvous->row);
          // relaxed: monitoring counter; no ordering with the record data.
          record_bytes_shipped_.fetch_add(row.size(),
                                          std::memory_order_relaxed);
          version = rendezvous->version;
        } else if (rendezvous->status.IsNotFound()) {
          row.assign(record_size, 0);
          RecordView rec(schema_, row.data());
          if (sys_.entity_id != kInvalidAttr) {
            rec.SetAs<std::uint64_t>(sys_.entity_id, event.caller);
          }
          fresh = true;
        } else {
          result = rendezvous->status;
          break;
        }

        // Local processing on the ESP node: update program + rules.
        program.Apply(event, row.data());
        if (sys_.last_event_ts != kInvalidAttr) {
          RecordView(schema_, row.data())
              .SetAs<std::int64_t>(sys_.last_event_ts, event.timestamp);
        }
        evaluator.Evaluate(event, ConstRecordView(schema_, row.data()),
                           &matched);
        policy_tracker.Filter(*rules_, event.caller, event.timestamp,
                              &matched);

        // Remote Put: the record crosses the wire again.
        rendezvous->Reset();
        RecordRequest put;
        put.kind = fresh ? RecordRequest::Kind::kInsert
                         : RecordRequest::Kind::kPut;
        put.entity = event.caller;
        put.row = std::move(row);
        put.expected_version = version;
        // relaxed: monitoring counter.
        record_bytes_shipped_.fetch_add(record_size,
                                        std::memory_order_relaxed);
        put.reply = [rv = rendezvous](Status st, std::vector<std::uint8_t>&& b,
                                      Version v) {
          rv->Complete(std::move(st), std::move(b), v);
        };
        if (!channel_->SubmitRecordRequest(std::move(put))) {
          result = Status::Shutdown();
          break;
        }
        if (!rendezvous->WaitFor(options_.record_reply_timeout_millis)) {
          result = Status::DeadlineExceeded("record put reply timed out");
          rendezvous = std::make_shared<Rendezvous>();  // abandon the slot
          break;
        }
        if (rendezvous->status.ok()) {
          result = Status::OK();
          break;
        }
        if (rendezvous->status.IsConflict()) {
          // relaxed: monitoring counter.
          txn_conflicts_.fetch_add(1, std::memory_order_relaxed);
          continue;  // restart the single-row transaction
        }
        result = rendezvous->status;
        break;
      }

      // relaxed: monitoring counters; stats() tolerates torn snapshots.
      if (result.ok()) {
        events_processed_.fetch_add(1, std::memory_order_relaxed);
        rules_fired_.fetch_add(matched.size(), std::memory_order_relaxed);
      }
      if (queued.completion != nullptr) {
        queued.completion->status = result;
        queued.completion->fired_rules = matched;
        queued.completion->complete_nanos = NowNanos();
        queued.completion->done.store(true, std::memory_order_release);
      }
      event_buffers_.Release(std::move(queued.bytes));
    }
  }
}

EspTierNode::Stats EspTierNode::stats() const {
  Stats s;
  // relaxed: monitoring snapshot; counters may be mutually torn.
  s.events_processed = events_processed_.load(std::memory_order_relaxed);
  s.txn_conflicts = txn_conflicts_.load(std::memory_order_relaxed);
  s.rules_fired = rules_fired_.load(std::memory_order_relaxed);
  s.record_bytes_shipped =
      record_bytes_shipped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace aim
