#include "aim/server/aim_cluster.h"

namespace aim {

AimCluster::AimCluster(const Schema* schema, const DimensionCatalog* dims,
                       const std::vector<Rule>* rules,
                       const Options& options)
    : metrics_(std::make_unique<MetricsRegistry>()) {
  for (std::uint32_t i = 0; i < options.num_nodes; ++i) {
    StorageNode::Options node_opts = options.node;
    node_opts.node_id = i;
    node_opts.metrics = metrics_.get();
    nodes_.push_back(
        std::make_unique<StorageNode>(schema, dims, rules, node_opts));
  }
  std::vector<StorageNode*> raw;
  raw.reserve(nodes_.size());
  for (auto& n : nodes_) raw.push_back(n.get());
  front_end_ = std::make_unique<RtaFrontEnd>(std::move(raw), schema, dims,
                                             metrics_.get());
}

AimCluster::~AimCluster() { Stop(); }

Status AimCluster::LoadEntity(EntityId entity, const std::uint8_t* row) {
  return nodes_[NodeOf(entity)]->BulkLoad(entity, row);
}

Status AimCluster::Start() {
  for (auto& n : nodes_) {
    Status st = n->Start();
    if (!st.ok()) return st;
  }
  running_ = true;
  return Status::OK();
}

void AimCluster::Stop() {
  if (!running_) return;
  for (auto& n : nodes_) n->Stop();
  running_ = false;
}

bool AimCluster::IngestEvent(const Event& event,
                             EventCompletion* completion) {
  StorageNode* node = nodes_[NodeOf(event.caller)].get();
  // Serialize into a recycled buffer: the node's ESP loop releases every
  // processed event's bytes back into this pool, so steady-state ingest
  // allocates nothing per event.
  BinaryWriter writer(node->event_buffer_pool().Acquire());
  event.Serialize(&writer);
  return node->SubmitEvent(writer.TakeBuffer(), completion);
}

StorageNode::NodeStats AimCluster::TotalStats() const {
  StorageNode::NodeStats total;
  for (const auto& n : nodes_) {
    const StorageNode::NodeStats s = n->stats();
    total.events_processed += s.events_processed;
    total.txn_conflicts += s.txn_conflicts;
    total.rules_fired += s.rules_fired;
    total.queries_processed += s.queries_processed;
    total.scan_cycles += s.scan_cycles;
    total.records_merged += s.records_merged;
  }
  return total;
}

KpiMonitor AimCluster::MakeKpiMonitor(std::uint64_t entities,
                                      const KpiTargets& targets) const {
  KpiMonitor::Inputs inputs;
  inputs.entities = entities;
  for (const auto& n : nodes_) n->CollectMonitorInputs(&inputs);
  return KpiMonitor(inputs, targets);
}

std::uint64_t AimCluster::total_records() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->total_records();
  return n;
}

}  // namespace aim
