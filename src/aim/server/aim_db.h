#ifndef AIM_SERVER_AIM_DB_H_
#define AIM_SERVER_AIM_DB_H_

#include <memory>
#include <vector>

#include "aim/esp/esp_engine.h"
#include "aim/obs/freshness_tracer.h"
#include "aim/obs/histogram.h"
#include "aim/obs/registry.h"
#include "aim/rta/compiled_query.h"
#include "aim/rta/dimension.h"
#include "aim/rta/partial_result.h"
#include "aim/rta/shared_scan.h"
#include "aim/storage/delta_main.h"

namespace aim {

/// Embedded, single-threaded AIM facade: one delta-main partition, one ESP
/// engine, synchronous query execution. The easiest way to use the library
/// (see examples/quickstart.cpp) and the reference "one box, no threads"
/// configuration that the threaded StorageNode is tested against.
///
/// Not thread-safe. For the full threaded/distributed system use AimCluster.
class AimDb {
 public:
  struct Options {
    std::uint32_t bucket_size = ColumnMap::kDefaultBucketSize;
    std::uint64_t max_records = 1u << 20;
    /// Merge the delta into the main before each query, so queries always
    /// see every processed event (t_fresh = 0 semantics). Disable to mimic
    /// the asynchronous freshness of the threaded system.
    bool merge_before_query = true;
    EspEngine::Options esp;
  };

  /// `schema` must be finalized; all pointers must outlive the db. `dims`
  /// and `rules` may be null/empty.
  AimDb(const Schema* schema, const DimensionCatalog* dims,
        const std::vector<Rule>* rules, const Options& options);

  const Schema& schema() const { return *schema_; }
  DeltaMainStore& store() { return *store_; }
  EspEngine& engine() { return *engine_; }

  /// Bulk load (before any event processing, by convention).
  Status LoadEntity(EntityId entity, const std::uint8_t* row) {
    return store_->BulkInsert(entity, row);
  }

  /// Processes one event: updates the Analytics Matrix and evaluates the
  /// business rules. `fired` (optional) receives matched rule ids.
  Status ProcessEvent(const Event& event,
                      std::vector<std::uint32_t>* fired = nullptr) {
    return engine_->ProcessEvent(event, fired);
  }

  /// Executes one query synchronously.
  QueryResult Execute(const Query& query);

  /// Executes a batch in one shared scan pass (Algorithm 5).
  std::vector<QueryResult> ExecuteBatch(const std::vector<Query>& queries);

  /// Point lookup of one attribute of one entity.
  StatusOr<Value> GetAttribute(EntityId entity, const std::string& attr_name);

  /// Folds the delta into the main (SwitchDeltas + MergeStep).
  std::size_t Merge() { return store_->Merge(); }

  /// Always-on metrics of this embedded instance (engine counters, store
  /// merge/freshness series, query latency). See docs/OBSERVABILITY.md.
  MetricsRegistry& metrics() const { return *metrics_; }

 private:
  const Schema* schema_;
  const DimensionCatalog* dims_;
  const std::vector<Rule>* rules_;
  std::vector<Rule> empty_rules_;
  Options options_;

  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<FreshnessTracer> tracer_;
  std::unique_ptr<DeltaMainStore> store_;
  std::unique_ptr<EspEngine> engine_;
  AtomicHistogram* query_latency_ = nullptr;  // micros, per Execute batch
  Counter* queries_ = nullptr;
  ScanScratch scratch_;
};

}  // namespace aim

#endif  // AIM_SERVER_AIM_DB_H_
