#ifndef AIM_SERVER_LOCAL_NODE_CHANNEL_H_
#define AIM_SERVER_LOCAL_NODE_CHANNEL_H_

#include <vector>

#include "aim/net/node_channel.h"
#include "aim/server/storage_node.h"

namespace aim {

/// In-process NodeChannel: forwards straight to a StorageNode. This is the
/// default transport of the repo (the paper's co-located deployment) and
/// what TcpServer serves remotely — the same channel surface on both sides
/// keeps tier code transport-agnostic.
class LocalNodeChannel : public NodeChannel {
 public:
  /// `node` must outlive the channel.
  explicit LocalNodeChannel(StorageNode* node) : node_(node) {}

  NodeInfo info() const override {
    NodeInfo info;
    info.node_id = node_->options().node_id;
    info.num_partitions = node_->options().num_partitions;
    info.record_size = node_->schema().record_size();
    info.features = kFeatureEventBatch;
    return info;
  }

  bool SubmitEvent(std::vector<std::uint8_t> event_bytes,
                   EventCompletion* completion) override {
    return node_->SubmitEvent(std::move(event_bytes), completion);
  }

  std::size_t SubmitEventBatch(std::vector<EventMessage>&& batch) override {
    return node_->SubmitEventBatch(std::move(batch));
  }

  bool SubmitQuery(
      std::vector<std::uint8_t> query_bytes,
      std::function<void(std::vector<std::uint8_t>&&)> reply) override {
    return node_->SubmitQuery(std::move(query_bytes), std::move(reply));
  }

  bool SubmitRecordRequest(RecordRequest request) override {
    return node_->SubmitRecordRequest(std::move(request));
  }

  StorageNode* node() const { return node_; }

 private:
  StorageNode* node_;
};

}  // namespace aim

#endif  // AIM_SERVER_LOCAL_NODE_CHANNEL_H_
