#ifndef AIM_SERVER_ESP_TIER_H_
#define AIM_SERVER_ESP_TIER_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "aim/common/buffer_pool.h"
#include "aim/common/mpsc_queue.h"
#include "aim/esp/esp_engine.h"
#include "aim/net/message.h"
#include "aim/net/node_channel.h"
#include "aim/server/storage_node.h"

namespace aim {

/// Deployment option (a) of paper §4.2: a *separate* ESP processing tier.
/// ESP logic (update program + rule evaluation) runs on dedicated ESP nodes
/// that use the storage layer only through its Get/Put record interface —
/// which means full Entity Records (multi-KB) cross the simulated network
/// twice per event, instead of the 64-byte event crossing once as in the
/// co-located option (b) that StorageNode implements natively.
///
/// The paper measured both layouts and chose (b) for its evaluation because
/// shipping 3 KB records costs more than shipping 64 B events; the
/// bench_deployment binary reproduces that comparison.
///
/// One EspTierNode drives one storage node through its record service; it is
/// registered as the node's single logical ESP writer per partition (the
/// storage node still runs its ESP service threads, which now execute plain
/// Get/Put requests instead of full event processing).
class EspTierNode {
 public:
  struct Options {
    std::uint32_t num_threads = 1;
    int max_txn_retries = 16;
    /// Safety-net bound on one Get/Put rendezvous. Remote channels already
    /// bound replies with their own request deadline; this catches a
    /// misbehaving channel so a tier worker can never hang forever. An
    /// expired rendezvous fails the event with Status::DeadlineExceeded.
    std::int64_t record_reply_timeout_millis = 30'000;
    /// Upper bound on events a tier worker drains per wakeup (one queue
    /// lock acquisition amortized over the run; events still process —
    /// and complete — one at a time).
    std::uint32_t max_event_batch = 64;
    EspEngine::Options esp;  // rule-index toggle etc.
  };

  /// `node` must outlive this tier and be started. All ESP processing for
  /// `node` must go through this tier (single-writer discipline).
  EspTierNode(const Schema* schema, StorageNode* node,
              const std::vector<Rule>* rules, const Options& options);

  /// Same, over any NodeChannel — e.g. a net::TcpClient, putting a real
  /// network under the paper's deployment option (a). `channel` must
  /// outlive this tier.
  EspTierNode(const Schema* schema, NodeChannel* channel,
              const std::vector<Rule>* rules, const Options& options);
  ~EspTierNode();

  Status Start();
  void Stop();

  /// Submits one serialized event. `completion` may be null.
  bool SubmitEvent(std::vector<std::uint8_t> event_bytes,
                   EventCompletion* completion);

  /// Pool backing the tier's event byte buffers: workers release processed
  /// 64-byte wire buffers here; submit paths may Acquire to reuse them.
  BufferPool& event_buffer_pool() { return event_buffers_; }

  struct Stats {
    std::uint64_t events_processed = 0;
    std::uint64_t txn_conflicts = 0;
    std::uint64_t rules_fired = 0;
    std::uint64_t record_bytes_shipped = 0;  // Get replies + Put payloads
  };
  Stats stats() const;

 private:
  struct Worker {
    MpscQueue<EventMessage> queue;
    std::thread thread;
    std::uint32_t index = 0;  // worker slot, for the thread name
  };

  void WorkerLoop(Worker* worker);

  const Schema* schema_;
  std::unique_ptr<NodeChannel> owned_channel_;  // legacy StorageNode* ctor
  NodeChannel* channel_;
  const std::vector<Rule>* rules_;
  Options options_;
  SystemAttrs sys_;

  std::vector<std::unique_ptr<Worker>> workers_;
  BufferPool event_buffers_;
  std::atomic<bool> running_{false};

  std::atomic<std::uint64_t> events_processed_{0};
  std::atomic<std::uint64_t> txn_conflicts_{0};
  std::atomic<std::uint64_t> rules_fired_{0};
  std::atomic<std::uint64_t> record_bytes_shipped_{0};
};

}  // namespace aim

#endif  // AIM_SERVER_ESP_TIER_H_
