#ifndef AIM_SERVER_AIM_CLUSTER_H_
#define AIM_SERVER_AIM_CLUSTER_H_

#include <memory>
#include <vector>

#include "aim/common/hash.h"
#include "aim/server/rta_front_end.h"
#include "aim/server/storage_node.h"

namespace aim {

/// A simulated AIM deployment: N storage nodes (each with its own threads,
/// partitions and replicated dimension tables / rule set), an event
/// dispatcher routing 64-byte events by the global hash h(key) (paper §4.8),
/// and an RTA front-end that fans queries out to every node and merges the
/// partials. Stands in for the paper's Infiniband cluster — see DESIGN.md
/// for the substitution argument.
class AimCluster {
 public:
  struct Options {
    std::uint32_t num_nodes = 1;
    StorageNode::Options node;  // node_id is assigned per node
  };

  /// All pointers must outlive the cluster.
  AimCluster(const Schema* schema, const DimensionCatalog* dims,
             const std::vector<Rule>* rules, const Options& options);
  ~AimCluster();

  AimCluster(const AimCluster&) = delete;
  AimCluster& operator=(const AimCluster&) = delete;

  /// Bulk load before Start(): routes the entity to its node + partition.
  Status LoadEntity(EntityId entity, const std::uint8_t* row);

  Status Start();
  void Stop();

  /// Serializes and routes an event to its storage node (fire-and-forget if
  /// `completion` is null). Returns false once stopped.
  bool IngestEvent(const Event& event, EventCompletion* completion);

  /// Executes a query across all nodes via the RTA front-end.
  QueryResult ExecuteQuery(const Query& query) const {
    return front_end_->Execute(query);
  }

  std::uint32_t NodeOf(EntityId entity) const {
    return NodeHash(entity, static_cast<std::uint32_t>(nodes_.size()));
  }

  StorageNode& node(std::uint32_t i) { return *nodes_[i]; }
  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  StorageNode::NodeStats TotalStats() const;
  std::uint64_t total_records() const;

  /// One registry for the whole cluster; per-node series are distinguished
  /// by their node="<id>" label. Always-on.
  MetricsRegistry& metrics() const { return *metrics_; }

  /// Cluster-wide Table-4 SLA monitor: aggregates every node's event
  /// counters, latency histograms and traced-freshness distributions.
  /// The monitor borrows the cluster's metrics; it must not outlive it.
  KpiMonitor MakeKpiMonitor(std::uint64_t entities,
                            const KpiTargets& targets = {}) const;

 private:
  std::unique_ptr<MetricsRegistry> metrics_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  std::unique_ptr<RtaFrontEnd> front_end_;
  bool running_ = false;
};

}  // namespace aim

#endif  // AIM_SERVER_AIM_CLUSTER_H_
