#ifndef AIM_BASELINES_PURE_COLUMN_STORE_H_
#define AIM_BASELINES_PURE_COLUMN_STORE_H_

#include <memory>
#include <vector>

#include "aim/common/annotated_mutex.h"

#include "aim/baselines/baseline_store.h"
#include "aim/esp/update_kernel.h"
#include "aim/rta/compiled_query.h"
#include "aim/storage/column_map.h"

namespace aim {

/// "System M" surrogate (paper §5.1): a main-memory pure column store
/// optimized for analytics. Queries scan full columns with the same SIMD
/// kernels AIM uses, one query at a time. Updates are the weak spot the
/// paper identifies (§6: "an update of an Entity Record would incur 500
/// random memory accesses"): every event gathers the record from ~550
/// column arrays, applies the update program and scatters it back, under a
/// writer lock that excludes concurrent queries (no delta, no snapshots).
class PureColumnStore : public BaselineStore {
 public:
  struct Options {
    std::uint64_t max_records = 1u << 20;
  };

  PureColumnStore(const Schema* schema, const DimensionCatalog* dims,
                  const Options& options);

  std::string name() const override { return "SystemM-columnstore"; }
  Status Load(EntityId entity, const std::uint8_t* row) override;
  Status ApplyEvent(const Event& event) override;
  QueryResult Execute(const Query& query) override;

 private:
  const Schema* schema_;
  const DimensionCatalog* dims_;
  mutable SharedMutex mutex_;
  // bucket_size == max_records: one giant bucket = pure columnar layout.
  // The pointer is set once in the constructor; the pointee is what the
  // lock protects (writers scatter under WriterLock, scans run under
  // ReaderLock).
  std::unique_ptr<ColumnMap> columns_ AIM_PT_GUARDED_BY(mutex_);
  UpdateProgram program_ AIM_GUARDED_BY(mutex_);
  std::vector<std::uint8_t> row_buf_ AIM_GUARDED_BY(mutex_);
};

}  // namespace aim

#endif  // AIM_BASELINES_PURE_COLUMN_STORE_H_
