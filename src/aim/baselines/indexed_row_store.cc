#include "aim/baselines/indexed_row_store.h"

#include <cstring>

#include "aim/common/logging.h"
#include "aim/schema/record.h"

namespace aim {

IndexedRowStore::IndexedRowStore(const Schema* schema,
                                 const DimensionCatalog* dims,
                                 const Options& options)
    : schema_(schema),
      dims_(dims),
      options_(options),
      row_stride_((schema->record_size() + 7u) & ~std::size_t{7}),
      primary_(1024),
      program_(*schema, schema->FindAttribute("preferred_number")),
      old_row_buf_(schema->record_size(), 0) {
  for (std::uint16_t attr : options_.indexed_attrs) {
    indexes_.emplace(attr, std::multimap<double, std::uint32_t>{});
  }
}

double IndexedRowStore::AttrValue(const std::uint8_t* row,
                                  std::uint16_t attr) const {
  const Attribute& a = schema_->attribute(attr);
  return Value::Load(a.type, row + a.row_offset).AsDouble();
}

std::uint32_t IndexedRowStore::AppendRowLocked(EntityId entity,
                                               const std::uint8_t* row) {
  const std::uint32_t idx = num_rows_;
  if (idx / kChunkRows >= chunks_.size()) {
    chunks_.emplace_back(new std::uint8_t[kChunkRows * row_stride_]());
  }
  std::memcpy(RowAt(idx), row, schema_->record_size());
  primary_.Upsert(entity, idx);
  num_rows_ = idx + 1;
  IndexInsertLocked(idx, row);
  return idx;
}

void IndexedRowStore::IndexInsertLocked(std::uint32_t row_idx,
                                        const std::uint8_t* row) {
  for (auto& [attr, index] : indexes_) {
    index.emplace(AttrValue(row, attr), row_idx);
  }
}

void IndexedRowStore::IndexUpdateLocked(std::uint32_t row_idx,
                                        const std::uint8_t* old_row,
                                        const std::uint8_t* new_row) {
  // The index-maintenance tax: one erase + one insert per changed indexed
  // attribute per event.
  for (auto& [attr, index] : indexes_) {
    const double old_v = AttrValue(old_row, attr);
    const double new_v = AttrValue(new_row, attr);
    if (old_v == new_v) continue;
    auto [lo, hi] = index.equal_range(old_v);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == row_idx) {
        index.erase(it);
        break;
      }
    }
    index.emplace(new_v, row_idx);
  }
}

Status IndexedRowStore::Load(EntityId entity, const std::uint8_t* row) {
  WriterLock lock(mutex_);
  if (primary_.Contains(entity)) return Status::Conflict("duplicate entity");
  AppendRowLocked(entity, row);
  return Status::OK();
}

Status IndexedRowStore::ApplyEvent(const Event& event) {
  WriterLock lock(mutex_);
  const std::uint32_t idx = primary_.Find(event.caller);
  if (idx == DenseMap::kNotFound) {
    std::vector<std::uint8_t> fresh(schema_->record_size(), 0);
    RecordView rec(schema_, fresh.data());
    const std::uint16_t entity_attr = schema_->FindAttribute("entity_id");
    if (entity_attr != kInvalidAttr) {
      rec.SetAs<std::uint64_t>(entity_attr, event.caller);
    }
    program_.Apply(event, fresh.data());
    AppendRowLocked(event.caller, fresh.data());
    return Status::OK();
  }
  std::uint8_t* row = RowAt(idx);
  std::memcpy(old_row_buf_.data(), row, schema_->record_size());
  program_.Apply(event, row);
  IndexUpdateLocked(idx, old_row_buf_.data(), row);
  return Status::OK();
}

QueryResult IndexedRowStore::Execute(const Query& query) {
  // Index-advisor step: make sure the first filtered attribute has an
  // index (may take the writer lock briefly to build it).
  std::size_t index_filter = query.where.size();
  if (!query.where.empty()) {
    {
      // One shared-lock pass over the predicates (this used to re-acquire
      // the lock per iteration, which was both slower and let the index
      // set shift mid-decision).
      ReaderLock rlock(mutex_);
      for (std::size_t i = 0; i < query.where.size(); ++i) {
        if (indexes_.count(query.where[i].attr) > 0) {
          index_filter = i;
          break;
        }
      }
    }
    if (index_filter == query.where.size() && options_.auto_index) {
      WriterLock wlock(mutex_);
      const std::uint16_t attr = query.where[0].attr;
      if (indexes_.find(attr) == indexes_.end()) {
        auto& index = indexes_[attr];
        for (std::uint32_t i = 0; i < num_rows_; ++i) {
          index.emplace(AttrValue(RowAt(i), attr), i);
        }
      }
      index_filter = 0;
    }
  }

  ReaderLock lock(mutex_);
  RowQueryRun run;
  Status st = RowQueryRun::Compile(query, schema_, dims_, &run);
  if (!st.ok()) {
    QueryResult r;
    r.query_id = query.id;
    r.status = st;
    return r;
  }

  if (index_filter < query.where.size() &&
      indexes_.count(query.where[index_filter].attr) > 0) {
    // Index range scan on the chosen predicate, residual check for the
    // rest. Row fetches through the index are random accesses — the row
    // store pays that instead of a sequential scan.
    const ScanFilter& f = query.where[index_filter];
    const auto& index = indexes_.at(f.attr);
    const double c = f.constant.AsDouble();
    auto begin = index.begin();
    auto end = index.end();
    switch (f.op) {
      case CmpOp::kLt:
        end = index.lower_bound(c);
        break;
      case CmpOp::kLe:
        end = index.upper_bound(c);
        break;
      case CmpOp::kGt:
        begin = index.upper_bound(c);
        break;
      case CmpOp::kGe:
        begin = index.lower_bound(c);
        break;
      case CmpOp::kEq:
        begin = index.lower_bound(c);
        end = index.upper_bound(c);
        break;
      case CmpOp::kNe:
        break;  // full index scan with residual check
    }
    const std::size_t skip =
        f.op == CmpOp::kNe ? query.where.size() : index_filter;
    for (auto it = begin; it != end; ++it) {
      const std::uint8_t* row = RowAt(it->second);
      if (run.MatchesExcept(row, skip)) run.Accumulate(row);
    }
  } else {
    for (std::uint32_t i = 0; i < num_rows_; ++i) {
      const std::uint8_t* row = RowAt(i);
      if (run.Matches(row)) run.Accumulate(row);
    }
  }
  return run.Finish();
}

std::size_t IndexedRowStore::num_indexes() const {
  ReaderLock lock(mutex_);
  return indexes_.size();
}

}  // namespace aim
