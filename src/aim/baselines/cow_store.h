#ifndef AIM_BASELINES_COW_STORE_H_
#define AIM_BASELINES_COW_STORE_H_

#include <memory>
#include <vector>

#include "aim/common/annotated_mutex.h"

#include "aim/baselines/baseline_store.h"
#include "aim/baselines/row_query.h"
#include "aim/esp/update_kernel.h"
#include "aim/storage/dense_map.h"

namespace aim {

/// HyPer surrogate (paper §3.1 / §6): copy-on-write snapshots instead of
/// differential updates. The matrix lives in row-major pages; a query takes
/// a snapshot by copying the page table (the userspace analogue of fork's
/// lazy page-table copy), and the writer clones any page still shared with
/// a live snapshot before modifying it. Queries therefore never block the
/// writer, but the writer pays a page copy per first-touch after each
/// snapshot — the CoW overhead the paper's ESP KPIs could not tolerate
/// (§3.1: "the overhead caused by page faults in Copy-on-write is
/// unacceptable").
class CowStore : public BaselineStore {
 public:
  struct Options {
    std::uint64_t max_records = 1u << 20;
    /// Rows per page. With ~9 KB benchmark records, 4 rows per page gives
    /// page sizes in the tens of kilobytes — several OS pages, matching the
    /// fact that one record touches multiple pages in fork-based CoW.
    std::uint32_t rows_per_page = 16;
  };

  CowStore(const Schema* schema, const DimensionCatalog* dims,
           const Options& options);

  std::string name() const override { return "HyPer-cow"; }
  Status Load(EntityId entity, const std::uint8_t* row) override;
  Status ApplyEvent(const Event& event) override;
  QueryResult Execute(const Query& query) override;

  std::uint64_t pages_copied() const AIM_EXCLUDES(mutex_) {
    // Under mutex_: the writer increments this mid-ApplyEvent; an
    // unlocked read was a (benign-looking but undefined) data race the
    // thread-safety analysis flagged.
    MutexLock lock(mutex_);
    return pages_copied_;
  }

 private:
  struct Page {
    explicit Page(std::size_t bytes) : data(new std::uint8_t[bytes]()) {}
    std::unique_ptr<std::uint8_t[]> data;
  };
  using PagePtr = std::shared_ptr<Page>;

  std::uint8_t* WritableRowLocked(std::uint32_t idx) AIM_REQUIRES(mutex_);

  const Schema* schema_;
  const DimensionCatalog* dims_;
  Options options_;
  std::size_t row_stride_;
  std::size_t page_bytes_;

  mutable Mutex mutex_;  // guards the page table + the whole writer path
  std::vector<PagePtr> pages_ AIM_GUARDED_BY(mutex_);
  std::uint32_t num_rows_ AIM_GUARDED_BY(mutex_) = 0;
  DenseMap primary_ AIM_GUARDED_BY(mutex_);

  UpdateProgram program_ AIM_GUARDED_BY(mutex_);
  std::uint64_t pages_copied_ AIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace aim

#endif  // AIM_BASELINES_COW_STORE_H_
