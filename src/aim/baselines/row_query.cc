#include "aim/baselines/row_query.h"

#include <algorithm>
#include <cstring>

#include "aim/common/logging.h"

namespace aim {

namespace {

double LoadAsDouble(ValueType t, const std::uint8_t* p) {
  switch (t) {
    case ValueType::kInt32: {
      std::int32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case ValueType::kUInt32: {
      std::uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case ValueType::kInt64: {
      std::int64_t v;
      std::memcpy(&v, p, 8);
      return static_cast<double>(v);
    }
    case ValueType::kUInt64: {
      std::uint64_t v;
      std::memcpy(&v, p, 8);
      return static_cast<double>(v);
    }
    case ValueType::kFloat: {
      float v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case ValueType::kDouble: {
      double v;
      std::memcpy(&v, p, 8);
      return v;
    }
  }
  return 0.0;
}

bool EvalCmp(CmpOp op, double lhs, double rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

bool CmpU32(CmpOp op, std::uint32_t lhs, std::uint32_t rhs) {
  return EvalCmp(op, lhs, rhs);
}

}  // namespace

Status RowQueryRun::Compile(const Query& query, const Schema* schema,
                            const DimensionCatalog* dims, RowQueryRun* out) {
  out->query_ = query;
  out->schema_ = schema;
  out->dims_ = dims;
  out->filters_.clear();
  out->fk_filters_.clear();
  out->agg_slots_.clear();
  out->fk_to_group_.clear();
  out->group_index_.clear();
  out->partial_ = PartialResult{};
  out->partial_.query_id = query.id;
  out->topk_state_.assign(query.topk.size(), {});

  for (const ScanFilter& f : query.where) {
    if (f.attr >= schema->num_attributes()) {
      return Status::InvalidArgument("filter attribute out of range");
    }
    const Attribute& a = schema->attribute(f.attr);
    out->filters_.push_back(
        RowFilter{a.row_offset, a.type, f.op, f.constant.AsDouble()});
  }

  for (const DimFilter& f : query.dim_where) {
    if (dims == nullptr || f.dim_table >= dims->num_tables()) {
      return Status::InvalidArgument("unknown dimension table");
    }
    const DimensionTable& table = dims->table(f.dim_table);
    std::unordered_set<std::uint32_t> matching;
    const bool is_string =
        table.column_type(f.dim_column) == DimensionTable::ColumnType::kString;
    for (std::uint32_t row = 0; row < table.num_rows(); ++row) {
      bool pass;
      if (is_string) {
        const bool eq =
            table.string_value(row, f.dim_column) == f.str_constant;
        pass = f.op == CmpOp::kEq ? eq : (f.op == CmpOp::kNe && !eq);
      } else {
        pass = CmpU32(f.op, table.u32_value(row, f.dim_column), f.constant);
      }
      if (pass) {
        matching.insert(static_cast<std::uint32_t>(table.row_key(row)));
      }
    }
    const Attribute& fk = schema->attribute(f.fk_attr);
    out->fk_filters_.push_back(FkSet{fk.row_offset, std::move(matching)});
  }

  std::uint32_t slot = 0;
  for (const SelectItem& s : query.select) {
    const bool count_star = s.attr == kInvalidAttr && s.op == AggOp::kCount;
    if (!count_star && s.attr >= schema->num_attributes()) {
      return Status::InvalidArgument("aggregate over invalid attribute");
    }
    out->agg_slots_.push_back(
        AggSlot{slot++, count_star ? kInvalidAttr : s.attr});
    if (s.is_sum_ratio) {
      if (s.den_attr >= schema->num_attributes()) {
        return Status::InvalidArgument("ratio denominator out of range");
      }
      out->agg_slots_.push_back(AggSlot{slot++, s.den_attr});
    }
  }
  out->num_slots_ = slot;

  if (query.group_by.kind == GroupBy::Kind::kMatrixAttr) {
    out->group_attr_ = query.group_by.attr;
  } else if (query.group_by.kind == GroupBy::Kind::kDimColumn) {
    out->group_by_dim_ = true;
    out->group_fk_attr_ = query.group_by.fk_attr;
    const DimensionTable& table = dims->table(query.group_by.dim_table);
    for (std::uint32_t row = 0; row < table.num_rows(); ++row) {
      out->fk_to_group_.emplace(
          static_cast<std::uint32_t>(table.row_key(row)),
          table.GroupKey(row, query.group_by.dim_column));
    }
  }
  return Status::OK();
}

double RowQueryRun::LoadAttr(const std::uint8_t* row,
                             std::uint16_t attr) const {
  const Attribute& a = schema_->attribute(attr);
  return LoadAsDouble(a.type, row + a.row_offset);
}

bool RowQueryRun::MatchesExcept(const std::uint8_t* row,
                                std::size_t skip_index) const {
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    if (i == skip_index) continue;
    const RowFilter& f = filters_[i];
    if (!EvalCmp(f.op, LoadAsDouble(f.type, row + f.offset), f.constant)) {
      return false;
    }
  }
  for (const FkSet& f : fk_filters_) {
    std::uint32_t fk;
    std::memcpy(&fk, row + f.offset, 4);
    if (f.matching.find(fk) == f.matching.end()) return false;
  }
  return true;
}

bool RowQueryRun::Matches(const std::uint8_t* row) const {
  return MatchesExcept(row, filters_.size());
}

void RowQueryRun::Accumulate(const std::uint8_t* row) {
  if (query_.kind == Query::Kind::kTopK) {
    for (std::size_t t = 0; t < query_.topk.size(); ++t) {
      const TopKTarget& target = query_.topk[t];
      double v = LoadAttr(row, target.attr);
      if (target.den_attr != kInvalidAttr) {
        const double den = LoadAttr(row, target.den_attr);
        if (den == 0.0) continue;
        v /= den;
      }
      TopKEntry entry;
      const Attribute& ea = schema_->attribute(query_.entity_attr);
      std::uint64_t ent = 0;
      std::memcpy(&ent, row + ea.row_offset, ValueTypeSize(ea.type));
      entry.entity = ent;
      entry.value = v;
      topk_state_[t].push_back(entry);
      if (topk_state_[t].size() > static_cast<std::size_t>(query_.k) * 4 + 16) {
        const bool asc = target.ascending;
        std::nth_element(topk_state_[t].begin(),
                         topk_state_[t].begin() + query_.k - 1,
                         topk_state_[t].end(),
                         [asc](const TopKEntry& a, const TopKEntry& b) {
                           return asc ? a.value < b.value : a.value > b.value;
                         });
        topk_state_[t].resize(query_.k);
      }
    }
    return;
  }

  std::uint64_t key = 0;
  if (query_.kind == Query::Kind::kGroupBy) {
    if (group_by_dim_) {
      const Attribute& fk_attr = schema_->attribute(group_fk_attr_);
      std::uint32_t fk;
      std::memcpy(&fk, row + fk_attr.row_offset, 4);
      auto it = fk_to_group_.find(fk);
      if (it == fk_to_group_.end()) return;
      key = it->second;
    } else {
      const Attribute& a = schema_->attribute(group_attr_);
      if (a.type == ValueType::kInt32) {
        std::int32_t v;
        std::memcpy(&v, row + a.row_offset, 4);
        key = static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
      } else {
        std::uint64_t v = 0;
        std::memcpy(&v, row + a.row_offset, ValueTypeSize(a.type));
        key = v;
      }
    }
  }

  auto [it, inserted] = group_index_.emplace(
      key, static_cast<std::uint32_t>(partial_.groups.size()));
  if (inserted) {
    PartialResult::Group g;
    g.key = key;
    g.slots.assign(num_slots_, simd::AggAccum{});
    partial_.groups.push_back(std::move(g));
  }
  PartialResult::Group& g = partial_.groups[it->second];
  for (const AggSlot& slot : agg_slots_) {
    simd::AggAccum& acc = g.slots[slot.slot];
    if (slot.attr == kInvalidAttr) {
      acc.count++;
      continue;
    }
    const double v = LoadAttr(row, slot.attr);
    acc.sum += v;
    if (v < acc.min) acc.min = v;
    if (v > acc.max) acc.max = v;
    acc.count++;
  }
}

QueryResult RowQueryRun::Finish() {
  partial_.topk.clear();
  for (std::size_t t = 0; t < topk_state_.size(); ++t) {
    auto& entries = topk_state_[t];
    const bool asc = query_.topk[t].ascending;
    std::sort(entries.begin(), entries.end(),
              [asc](const TopKEntry& a, const TopKEntry& b) {
                return asc ? a.value < b.value : a.value > b.value;
              });
    if (entries.size() > query_.k) entries.resize(query_.k);
    partial_.topk.push_back(std::move(entries));
  }
  return FinalizeResult(query_, dims_, std::move(partial_));
}

}  // namespace aim
