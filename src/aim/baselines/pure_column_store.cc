#include "aim/baselines/pure_column_store.h"

#include <cstring>

namespace aim {

PureColumnStore::PureColumnStore(const Schema* schema,
                                 const DimensionCatalog* dims,
                                 const Options& options)
    : schema_(schema),
      dims_(dims),
      columns_(std::make_unique<ColumnMap>(
          schema, static_cast<std::uint32_t>(options.max_records),
          options.max_records)),
      program_(*schema, schema->FindAttribute("preferred_number")),
      row_buf_(schema->record_size(), 0) {}

Status PureColumnStore::Load(EntityId entity, const std::uint8_t* row) {
  WriterLock lock(mutex_);
  StatusOr<RecordId> id = columns_->Insert(entity, row, 1);
  return id.ok() ? Status::OK() : id.status();
}

Status PureColumnStore::ApplyEvent(const Event& event) {
  WriterLock lock(mutex_);
  const RecordId id = columns_->Lookup(event.caller);
  if (id == kInvalidRecordId) {
    // Auto-create, as the AIM engine does.
    std::memset(row_buf_.data(), 0, row_buf_.size());
    RecordView rec(schema_, row_buf_.data());
    const std::uint16_t entity_attr = schema_->FindAttribute("entity_id");
    if (entity_attr != kInvalidAttr) {
      rec.SetAs<std::uint64_t>(entity_attr, event.caller);
    }
    program_.Apply(event, row_buf_.data());
    StatusOr<RecordId> inserted =
        columns_->Insert(event.caller, row_buf_.data(), 1);
    return inserted.ok() ? Status::OK() : inserted.status();
  }
  // The "500 random memory accesses" path: gather, update, scatter.
  columns_->MaterializeRow(id, row_buf_.data());
  program_.Apply(event, row_buf_.data());
  columns_->ScatterRow(id, row_buf_.data());
  columns_->set_version(id, columns_->version(id) + 1);
  return Status::OK();
}

QueryResult PureColumnStore::Execute(const Query& query) {
  ReaderLock lock(mutex_);
  StatusOr<CompiledQuery> cq = CompiledQuery::Compile(query, schema_, dims_);
  if (!cq.ok()) {
    QueryResult r;
    r.query_id = query.id;
    r.status = cq.status();
    return r;
  }
  // Per-query scratch: Execute runs under a *shared* lock, so concurrent
  // queries may overlap — a shared member scratch buffer was a data race
  // between them (caught by the thread-safety annotations: writing
  // through a member under a shared capability).
  ScanScratch scratch;
  const std::uint32_t buckets = columns_->num_buckets();
  for (std::uint32_t b = 0; b < buckets; ++b) {
    cq->ProcessBucket(*columns_, columns_->bucket(b), &scratch);
  }
  return FinalizeResult(query, dims_, cq->TakePartial());
}

}  // namespace aim
