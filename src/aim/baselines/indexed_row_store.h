#ifndef AIM_BASELINES_INDEXED_ROW_STORE_H_
#define AIM_BASELINES_INDEXED_ROW_STORE_H_

#include <map>
#include <memory>
#include <vector>

#include "aim/common/annotated_mutex.h"

#include "aim/baselines/baseline_store.h"
#include "aim/baselines/row_query.h"
#include "aim/esp/update_kernel.h"
#include "aim/storage/dense_map.h"

namespace aim {

/// "System D" surrogate (paper §5.1): a row-organized database "with
/// support for fast updates" whose index advisor created indexes on the
/// query-filtered columns (the paper let it do this "despite the benchmark
/// forbidding precisely this"). Queries pick the best available index and
/// fall back to full row scans; every update must maintain every secondary
/// index, which is what caps its event rate at a few hundred per second in
/// the paper.
class IndexedRowStore : public BaselineStore {
 public:
  struct Options {
    std::uint64_t max_records = 1u << 20;
    /// Attribute ids to index up front. Execute() also auto-creates an
    /// index for the first filter of a query it has no index for
    /// (index-advisor behaviour).
    std::vector<std::uint16_t> indexed_attrs;
    bool auto_index = true;
  };

  IndexedRowStore(const Schema* schema, const DimensionCatalog* dims,
                  const Options& options);

  std::string name() const override { return "SystemD-rowstore"; }
  Status Load(EntityId entity, const std::uint8_t* row) override;
  Status ApplyEvent(const Event& event) override;
  QueryResult Execute(const Query& query) override;

  std::size_t num_indexes() const;

 private:
  static constexpr std::uint32_t kChunkRows = 4096;

  std::uint8_t* RowAt(std::uint32_t idx) const AIM_REQUIRES_SHARED(mutex_) {
    return chunks_[idx / kChunkRows].get() +
           static_cast<std::size_t>(idx % kChunkRows) * row_stride_;
  }

  std::uint32_t AppendRowLocked(EntityId entity, const std::uint8_t* row)
      AIM_REQUIRES(mutex_);
  void IndexInsertLocked(std::uint32_t row_idx, const std::uint8_t* row)
      AIM_REQUIRES(mutex_);
  void IndexUpdateLocked(std::uint32_t row_idx, const std::uint8_t* old_row,
                         const std::uint8_t* new_row) AIM_REQUIRES(mutex_);
  double AttrValue(const std::uint8_t* row, std::uint16_t attr) const;

  const Schema* schema_;
  const DimensionCatalog* dims_;
  Options options_;
  std::size_t row_stride_;

  mutable SharedMutex mutex_;
  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_ AIM_GUARDED_BY(mutex_);
  std::uint32_t num_rows_ AIM_GUARDED_BY(mutex_) = 0;
  DenseMap primary_ AIM_GUARDED_BY(mutex_);  // entity -> row idx

  // Secondary indexes: attr -> ordered multimap value -> row idx.
  std::map<std::uint16_t, std::multimap<double, std::uint32_t>> indexes_
      AIM_GUARDED_BY(mutex_);

  UpdateProgram program_ AIM_GUARDED_BY(mutex_);
  // Writer-only scratch for the old-row image; mutated under the exclusive
  // lock in ApplyEvent only.
  std::vector<std::uint8_t> old_row_buf_ AIM_GUARDED_BY(mutex_);
};

}  // namespace aim

#endif  // AIM_BASELINES_INDEXED_ROW_STORE_H_
