#ifndef AIM_BASELINES_ROW_QUERY_H_
#define AIM_BASELINES_ROW_QUERY_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aim/common/status.h"
#include "aim/rta/dimension.h"
#include "aim/rta/partial_result.h"
#include "aim/rta/query.h"

namespace aim {

/// Row-at-a-time query evaluation used by the row-organized baselines
/// (IndexedRowStore, CowStore). Compiles a Query once, then consumes
/// row-format records:
///
///   RowQueryRun run;
///   RETURN_IF_ERROR(RowQueryRun::Compile(query, schema, dims, &run));
///   for (row : rows) if (run.Matches(row)) run.Accumulate(row);
///   QueryResult r = run.Finish();
///
/// Matches() is split out so an index scan can skip it for rows already
/// qualified by the index.
class RowQueryRun {
 public:
  static Status Compile(const Query& query, const Schema* schema,
                        const DimensionCatalog* dims, RowQueryRun* out);

  /// Full predicate check (matrix filters + dimension FK membership).
  bool Matches(const std::uint8_t* row) const;

  /// Like Matches() but skipping the predicate at `skip_index` (already
  /// guaranteed by an index scan).
  bool MatchesExcept(const std::uint8_t* row, std::size_t skip_index) const;

  void Accumulate(const std::uint8_t* row);

  QueryResult Finish();

  const Query& query() const { return query_; }
  std::size_t num_filters() const { return filters_.size(); }
  const ScanFilter& filter(std::size_t i) const { return query_.where[i]; }

 private:
  double LoadAttr(const std::uint8_t* row, std::uint16_t attr) const;

  Query query_;
  const Schema* schema_ = nullptr;
  const DimensionCatalog* dims_ = nullptr;

  struct RowFilter {
    std::uint32_t offset;
    ValueType type;
    CmpOp op;
    double constant;
  };
  std::vector<RowFilter> filters_;

  struct FkSet {
    std::uint32_t offset;
    std::unordered_set<std::uint32_t> matching;
  };
  std::vector<FkSet> fk_filters_;

  // Aggregation state mirrors CompiledQuery's slot scheme.
  struct AggSlot {
    std::uint32_t slot;
    std::uint16_t attr;  // kInvalidAttr = COUNT(*)
  };
  std::vector<AggSlot> agg_slots_;
  std::uint32_t num_slots_ = 0;

  bool group_by_dim_ = false;
  std::uint16_t group_attr_ = kInvalidAttr;
  std::uint16_t group_fk_attr_ = kInvalidAttr;
  std::unordered_map<std::uint32_t, std::uint64_t> fk_to_group_;

  PartialResult partial_;
  std::unordered_map<std::uint64_t, std::uint32_t> group_index_;
  std::vector<std::vector<TopKEntry>> topk_state_;
};

}  // namespace aim

#endif  // AIM_BASELINES_ROW_QUERY_H_
