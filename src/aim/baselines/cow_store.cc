#include "aim/baselines/cow_store.h"

#include <cstring>

#include "aim/schema/record.h"

namespace aim {

CowStore::CowStore(const Schema* schema, const DimensionCatalog* dims,
                   const Options& options)
    : schema_(schema),
      dims_(dims),
      options_(options),
      row_stride_((schema->record_size() + 7u) & ~std::size_t{7}),
      page_bytes_(row_stride_ * options.rows_per_page),
      primary_(1024),
      program_(*schema, schema->FindAttribute("preferred_number")) {}

std::uint8_t* CowStore::WritableRowLocked(std::uint32_t idx) {
  const std::uint32_t p = idx / options_.rows_per_page;
  PagePtr& page = pages_[p];
  if (page.use_count() > 1) {
    // Page still referenced by a snapshot: clone before writing (the CoW
    // "page fault").
    auto clone = std::make_shared<Page>(page_bytes_);
    std::memcpy(clone->data.get(), page->data.get(), page_bytes_);
    page = std::move(clone);
    ++pages_copied_;
  }
  return page->data.get() +
         static_cast<std::size_t>(idx % options_.rows_per_page) * row_stride_;
}

Status CowStore::Load(EntityId entity, const std::uint8_t* row) {
  MutexLock lock(mutex_);
  if (primary_.Contains(entity)) return Status::Conflict("duplicate entity");
  const std::uint32_t idx = num_rows_;
  if (idx / options_.rows_per_page >= pages_.size()) {
    pages_.push_back(std::make_shared<Page>(page_bytes_));
  }
  num_rows_ = idx + 1;
  std::memcpy(WritableRowLocked(idx), row, schema_->record_size());
  primary_.Upsert(entity, idx);
  return Status::OK();
}

Status CowStore::ApplyEvent(const Event& event) {
  MutexLock lock(mutex_);
  std::uint32_t idx = primary_.Find(event.caller);
  if (idx == DenseMap::kNotFound) {
    idx = num_rows_;
    if (idx / options_.rows_per_page >= pages_.size()) {
      pages_.push_back(std::make_shared<Page>(page_bytes_));
    }
    num_rows_ = idx + 1;
    std::uint8_t* row = WritableRowLocked(idx);
    std::memset(row, 0, schema_->record_size());
    RecordView rec(schema_, row);
    const std::uint16_t entity_attr = schema_->FindAttribute("entity_id");
    if (entity_attr != kInvalidAttr) {
      rec.SetAs<std::uint64_t>(entity_attr, event.caller);
    }
    program_.Apply(event, row);
    primary_.Upsert(event.caller, idx);
    return Status::OK();
  }
  program_.Apply(event, WritableRowLocked(idx));
  return Status::OK();
}

QueryResult CowStore::Execute(const Query& query) {
  // Snapshot: copy the page table under the lock (fork()'s lazy copy), then
  // scan without blocking the writer.
  std::vector<PagePtr> snapshot;
  std::uint32_t rows;
  {
    MutexLock lock(mutex_);
    snapshot = pages_;
    rows = num_rows_;
  }

  RowQueryRun run;
  Status st = RowQueryRun::Compile(query, schema_, dims_, &run);
  if (!st.ok()) {
    QueryResult r;
    r.query_id = query.id;
    r.status = st;
    return r;
  }
  for (std::uint32_t i = 0; i < rows; ++i) {
    const std::uint8_t* row =
        snapshot[i / options_.rows_per_page]->data.get() +
        static_cast<std::size_t>(i % options_.rows_per_page) * row_stride_;
    if (run.Matches(row)) run.Accumulate(row);
  }
  return run.Finish();
}

}  // namespace aim
