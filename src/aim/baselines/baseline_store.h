#ifndef AIM_BASELINES_BASELINE_STORE_H_
#define AIM_BASELINES_BASELINE_STORE_H_

#include <string>

#include "aim/common/status.h"
#include "aim/esp/event.h"
#include "aim/rta/partial_result.h"
#include "aim/rta/query.h"

namespace aim {

/// Interface the comparison benches drive (paper §5.3): AIM against
/// "System M" (in-memory column store), "System D" (row store with
/// indexes) and HyPer (copy-on-write snapshots). Each baseline maintains
/// the same Analytics Matrix semantics — the compiled update program runs
/// per event — but with the storage architecture the paper attributes to
/// the competitor, so the relative shapes (who wins updates, who wins
/// scans, by roughly what class) reproduce.
///
/// All baselines are thread-compatible the same way: one writer thread
/// calls ApplyEvent, reader threads call Execute; the implementation
/// synchronizes internally (that synchronization cost is part of what is
/// being measured).
class BaselineStore {
 public:
  virtual ~BaselineStore() = default;

  virtual std::string name() const = 0;

  /// Bulk load before any events/queries.
  virtual Status Load(EntityId entity, const std::uint8_t* row) = 0;

  /// Processes one event end-to-end (update path only; baselines do not
  /// evaluate business rules — the paper measured their RTA performance in
  /// isolation and their raw event rates via stored procedures).
  virtual Status ApplyEvent(const Event& event) = 0;

  /// Executes one query (traditional one-query-at-a-time processing).
  virtual QueryResult Execute(const Query& query) = 0;
};

}  // namespace aim

#endif  // AIM_BASELINES_BASELINE_STORE_H_
