#include "aim/obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace aim {

int AtomicHistogram::BucketFor(double value) {
  if (value <= 1.0) return 0;
  // 4 buckets per octave: index = 4 * log2(value) (LatencyRecorder layout).
  const int idx = static_cast<int>(4.0 * std::log2(value));
  return std::min(idx, kNumBuckets - 1);
}

void AtomicHistogram::Record(double value) {
  if (value < 0) value = 0;
  const auto fp = static_cast<std::uint64_t>(value * kFixedPoint);
  // relaxed: monitoring histogram; Snapshot() tolerates torn cross-field
  // views and no reader derives other shared state from these values.
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_fp_.fetch_add(fp, std::memory_order_relaxed);

  // relaxed: same monitoring rule; the CAS loops retry only while the
  // extremum is actually moving.
  std::uint64_t cur = min_fp_.load(std::memory_order_relaxed);
  while (fp < cur && !min_fp_.compare_exchange_weak(
                         cur, fp, std::memory_order_relaxed)) {
  }
  // relaxed: see min_fp_ above.
  cur = max_fp_.load(std::memory_order_relaxed);
  while (fp > cur && !max_fp_.compare_exchange_weak(
                         cur, fp, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot AtomicHistogram::Snapshot() const {
  HistogramSnapshot s;
  // relaxed: monitoring snapshot; may be mutually torn (see header).
  for (int i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  // relaxed: see above.
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = static_cast<double>(sum_fp_.load(std::memory_order_relaxed)) /
          kFixedPoint;
  const std::uint64_t min_fp = min_fp_.load(std::memory_order_relaxed);
  // relaxed: see above.
  const std::uint64_t max_fp = max_fp_.load(std::memory_order_relaxed);
  s.min = min_fp == UINT64_MAX ? 0.0
                               : static_cast<double>(min_fp) / kFixedPoint;
  s.max = static_cast<double>(max_fp) / kFixedPoint;
  return s;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= target && buckets[i] > 0) {
      // Upper edge of bucket i: 2^((i+1)/4).
      return std::exp2(static_cast<double>(i + 1) / 4.0);
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  if (other.count > 0) {
    if (count == 0 || other.min < min) min = other.min;
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

HistogramSnapshot HistogramSnapshot::Delta(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  for (int i = 0; i < kNumBuckets; ++i) {
    // Guard against torn snapshots (a bucket increment visible in
    // `earlier` but its count not yet in *this would underflow).
    d.buckets[i] =
        buckets[i] >= earlier.buckets[i] ? buckets[i] - earlier.buckets[i] : 0;
  }
  d.count = count >= earlier.count ? count - earlier.count : 0;
  d.sum = sum >= earlier.sum ? sum - earlier.sum : 0.0;
  d.min = 0.0;  // extrema cannot be windowed; use Percentile on the delta
  d.max = 0.0;
  return d;
}

std::string HistogramSnapshot::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.3f p50=%.3f p95=%.3f p99=%.3f pmax=%.3f (n=%llu)",
                Mean(), Percentile(0.50), Percentile(0.95), Percentile(0.99),
                Percentile(1.0), static_cast<unsigned long long>(count));
  return std::string(buf);
}

}  // namespace aim
