#ifndef AIM_OBS_KPI_MONITOR_H_
#define AIM_OBS_KPI_MONITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "aim/common/clock.h"
#include "aim/obs/histogram.h"
#include "aim/obs/metric.h"

namespace aim {

/// The SLAs of the paper's AIM implementation (Table 4). Lives in obs so
/// the in-process KpiMonitor can evaluate them; workload/kpi.h re-exports
/// it for the bench harness.
struct KpiTargets {
  double t_esp_ms = 10.0;        // max event processing time
  double f_esp_per_hour = 3.6;   // min events per entity per hour
  double t_rta_ms = 100.0;       // max RTA response time
  double f_rta_qps = 100.0;      // min RTA queries per second
  double t_fresh_ms = 1000.0;    // max event-to-visibility time
};

/// One sliding-window evaluation of the five Table-4 SLAs, produced by
/// KpiMonitor::Sample(). Latency SLAs are checked against the window mean
/// (matching the paper's "average end-to-end response time" reporting);
/// t_fresh against the window's bucket-resolution maximum, since the SLA
/// bounds the worst case.
struct KpiSample {
  double window_seconds = 0.0;

  double t_esp_ms = 0.0;             // mean event latency in the window
  double f_esp_per_entity_hour = 0.0;
  double t_rta_ms = 0.0;             // mean query latency in the window
  double f_rta_qps = 0.0;
  double t_fresh_ms = 0.0;           // max traced staleness in the window
  bool fresh_traced = false;         // any merge published in the window?

  bool t_esp_ok = false;
  bool f_esp_ok = false;
  bool t_rta_ok = false;
  bool f_rta_ok = false;
  bool t_fresh_ok = false;

  bool AllPass() const {
    return t_esp_ok && f_esp_ok && t_rta_ok && f_rta_ok && t_fresh_ok;
  }
  int NumPass() const {
    return static_cast<int>(t_esp_ok) + static_cast<int>(f_esp_ok) +
           static_cast<int>(t_rta_ok) + static_cast<int>(f_rta_ok) +
           static_cast<int>(t_fresh_ok);
  }

  /// Multi-line "KPI target measured verdict" table (Table-4 layout).
  std::string Render(const KpiTargets& targets) const;
};

/// In-process Table-4 SLA monitor: wired to live registry metrics, it
/// evaluates each SLA over the window since the previous Sample() call
/// (cumulative counters and histogram snapshots are differenced, so the
/// instrumented threads pay nothing for the monitoring).
///
/// Inputs take *vectors* of sources because the natural aggregation unit
/// varies: a node sums one event counter per ESP engine; a cluster merges
/// one latency histogram per node. Null/empty inputs make the
/// corresponding SLA report zero and fail — a monitor must see real
/// signals to certify them.
class KpiMonitor {
 public:
  struct Inputs {
    std::vector<const Counter*> events;  // ESP events processed
    std::vector<const AtomicHistogram*> esp_latency_micros;
    std::vector<const Counter*> queries;  // RTA queries answered
    std::vector<const AtomicHistogram*> rta_latency_micros;
    std::vector<const AtomicHistogram*> freshness_millis;  // traced t_fresh
    std::uint64_t entities = 0;  // for f_ESP (events/entity/hour)
  };

  explicit KpiMonitor(Inputs inputs, const KpiTargets& targets = {});

  /// Evaluates the window since the last Sample() (or construction).
  KpiSample Sample();

  const KpiTargets& targets() const { return targets_; }

 private:
  static std::uint64_t Sum(const std::vector<const Counter*>& counters);
  static HistogramSnapshot Merged(
      const std::vector<const AtomicHistogram*>& hists);

  Inputs in_;
  KpiTargets targets_;
  Stopwatch window_;
  std::uint64_t prev_events_ = 0;
  std::uint64_t prev_queries_ = 0;
  HistogramSnapshot prev_esp_;
  HistogramSnapshot prev_rta_;
  HistogramSnapshot prev_fresh_;
};

}  // namespace aim

#endif  // AIM_OBS_KPI_MONITOR_H_
