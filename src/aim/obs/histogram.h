#ifndef AIM_OBS_HISTOGRAM_H_
#define AIM_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "aim/obs/metric.h"

namespace aim {

/// Point-in-time copy of an AtomicHistogram, with the percentile / mean
/// math. Also the unit of window arithmetic: Delta() subtracts an earlier
/// snapshot so a KpiMonitor can evaluate "mean latency over the last N
/// seconds" from two cumulative snapshots.
struct HistogramSnapshot {
  static constexpr int kNumBuckets = 256;

  std::array<std::uint64_t, kNumBuckets> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Percentile (q in [0,1]): upper edge of the bucket containing the
  /// q-quantile, 2^((i+1)/4) — the same ~19% bucket resolution as
  /// LatencyRecorder. Percentile(1.0) bounds the window maximum.
  double Percentile(double q) const;

  /// Merge another snapshot's samples into this one (cluster-level view).
  void Merge(const HistogramSnapshot& other);

  /// Samples recorded after `earlier` was taken (counts are monotone).
  /// min/max cannot be windowed and are cleared; use Percentile(1.0) of
  /// the delta to bound the window maximum.
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const;

  /// "mean/p50/p95/p99/pmax" summary (values in the histogram's unit).
  std::string Summary() const;
};

/// Thread-safe log-bucketed histogram — the always-on sibling of
/// LatencyRecorder, sharing its bucket layout (bucket i covers values up
/// to 2^((i+1)/4), ~19% resolution). Any number of threads may Record()
/// concurrently; any thread may Snapshot() concurrently with writers.
///
/// Hot-path cost: one relaxed fetch_add on the bucket plus two on
/// count/sum; the min/max CAS loops only retry while the extremum is
/// actually moving. The sum is kept in 1/1024 fixed point so it is a plain
/// integer fetch_add (no atomic<double> CAS loop on the hot path).
///
/// The value unit is whatever the metric name declares (micros, millis,
/// rows — see docs/OBSERVABILITY.md naming rules).
class AtomicHistogram {
 public:
  static constexpr int kNumBuckets = HistogramSnapshot::kNumBuckets;

  AtomicHistogram() = default;
  AtomicHistogram(const AtomicHistogram&) = delete;
  AtomicHistogram& operator=(const AtomicHistogram&) = delete;

  /// Record one sample (negative values clamp to 0).
  void Record(double value);

  /// Consistent-enough copy for monitoring: individual fields are atomic,
  /// the cross-field view may be torn by in-flight Records (a sample's
  /// bucket increment may be visible before its sum increment). Counts are
  /// monotone, so Delta() between two snapshots is always non-negative.
  HistogramSnapshot Snapshot() const;

  std::uint64_t Count() const {
    // relaxed: monitoring read; see Record.
    return count_.load(std::memory_order_relaxed);
  }

  static int BucketFor(double value);

 private:
  // 1/1024 fixed point for sum/min/max: integer atomics, ~0.001 absolute
  // resolution, 2^54 max representable value — far beyond any latency.
  static constexpr double kFixedPoint = 1024.0;

  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_fp_{0};
  std::atomic<std::uint64_t> min_fp_{UINT64_MAX};
  std::atomic<std::uint64_t> max_fp_{0};
};

}  // namespace aim

#endif  // AIM_OBS_HISTOGRAM_H_
