#include "aim/obs/registry.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "aim/common/logging.h"

namespace aim {

namespace {

/// Escapes a label value for both Prometheus and JSON output (the escape
/// sets coincide for the characters we allow in label values).
std::string EscapeValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PromLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + labels[i].first + "\":\"" + EscapeValue(labels[i].second) +
           "\"";
  }
  out += "}";
  return out;
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

/// %g-style compact double formatting that is also valid JSON (never
/// produces inf/nan — metric values are finite by construction).
std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

}  // namespace

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      Labels labels,
                                                      Type type) {
  std::sort(labels.begin(), labels.end());
  MutexLock lock(mu_);
  for (auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      AIM_CHECK_MSG(e->type == type,
                    "metric '%s' re-registered with a different type",
                    name.c_str());
      return e.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = std::move(labels);
  entry->type = type;
  switch (type) {
    case Type::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Type::kShardedCounter:
      entry->sharded = std::make_unique<ShardedCounter>();
      break;
    case Type::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Type::kHistogram:
      entry->histogram = std::make_unique<AtomicHistogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels) {
  return FindOrCreate(name, std::move(labels), Type::kCounter)->counter.get();
}

ShardedCounter* MetricsRegistry::GetShardedCounter(const std::string& name,
                                                   Labels labels) {
  return FindOrCreate(name, std::move(labels), Type::kShardedCounter)
      ->sharded.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels) {
  return FindOrCreate(name, std::move(labels), Type::kGauge)->gauge.get();
}

AtomicHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                               Labels labels) {
  return FindOrCreate(name, std::move(labels), Type::kHistogram)
      ->histogram.get();
}

std::size_t MetricsRegistry::NumMetrics() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::string MetricsRegistry::RenderPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  // One # TYPE line per family: entries are grouped by first appearance.
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  std::vector<std::string> families_done;
  for (const auto& e : entries_) {
    if (std::find(families_done.begin(), families_done.end(), e->name) !=
        families_done.end()) {
      continue;
    }
    families_done.push_back(e->name);
    for (const auto& f : entries_) {
      if (f->name == e->name) ordered.push_back(f.get());
    }
  }

  std::string last_family;
  for (const Entry* e : ordered) {
    if (e->name != last_family) {
      const char* type = nullptr;
      switch (e->type) {
        case Type::kCounter:
        case Type::kShardedCounter: type = "counter"; break;
        case Type::kGauge: type = "gauge"; break;
        case Type::kHistogram: type = "histogram"; break;
      }
      AppendF(&out, "# TYPE %s %s\n", e->name.c_str(), type);
      last_family = e->name;
    }
    const std::string labels = PromLabels(e->labels);
    switch (e->type) {
      case Type::kCounter:
      case Type::kShardedCounter:
        AppendF(&out, "%s%s %" PRIu64 "\n", e->name.c_str(), labels.c_str(),
                e->CounterValue());
        break;
      case Type::kGauge:
        AppendF(&out, "%s%s %" PRId64 "\n", e->name.c_str(), labels.c_str(),
                e->gauge->Value());
        break;
      case Type::kHistogram: {
        const HistogramSnapshot s = e->histogram->Snapshot();
        std::uint64_t cumulative = 0;
        for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
          if (s.buckets[i] == 0) continue;
          cumulative += s.buckets[i];
          Labels le = e->labels;
          le.emplace_back("le",
                          Num(std::exp2(static_cast<double>(i + 1) / 4.0)));
          AppendF(&out, "%s_bucket%s %" PRIu64 "\n", e->name.c_str(),
                  PromLabels(le).c_str(), cumulative);
        }
        Labels inf = e->labels;
        inf.emplace_back("le", "+Inf");
        AppendF(&out, "%s_bucket%s %" PRIu64 "\n", e->name.c_str(),
                PromLabels(inf).c_str(), s.count);
        AppendF(&out, "%s_sum%s %s\n", e->name.c_str(), labels.c_str(),
                Num(s.sum).c_str());
        AppendF(&out, "%s_count%s %" PRIu64 "\n", e->name.c_str(),
                labels.c_str(), s.count);
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  MutexLock lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& e : entries_) {
    switch (e->type) {
      case Type::kCounter:
      case Type::kShardedCounter:
        if (!counters.empty()) counters += ",";
        AppendF(&counters, "{\"name\":\"%s\",\"labels\":%s,\"value\":%" PRIu64
                           "}",
                e->name.c_str(), JsonLabels(e->labels).c_str(),
                e->CounterValue());
        break;
      case Type::kGauge:
        if (!gauges.empty()) gauges += ",";
        AppendF(&gauges, "{\"name\":\"%s\",\"labels\":%s,\"value\":%" PRId64
                         "}",
                e->name.c_str(), JsonLabels(e->labels).c_str(),
                e->gauge->Value());
        break;
      case Type::kHistogram: {
        const HistogramSnapshot s = e->histogram->Snapshot();
        if (!histograms.empty()) histograms += ",";
        AppendF(&histograms,
                "{\"name\":\"%s\",\"labels\":%s,\"count\":%" PRIu64
                ",\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"max\":%s}",
                e->name.c_str(), JsonLabels(e->labels).c_str(), s.count,
                Num(s.Mean()).c_str(), Num(s.Percentile(0.50)).c_str(),
                Num(s.Percentile(0.95)).c_str(),
                Num(s.Percentile(0.99)).c_str(), Num(s.max).c_str());
        break;
      }
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "]}";
}

}  // namespace aim
