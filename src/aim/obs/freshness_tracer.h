#ifndef AIM_OBS_FRESHNESS_TRACER_H_
#define AIM_OBS_FRESHNESS_TRACER_H_

#include <atomic>
#include <cstdint>

#include "aim/obs/histogram.h"

namespace aim {

/// Live t_fresh tracing for one delta-main partition (paper Table 4:
/// t_fresh <= 1 s). The bench harness can only *approximate* freshness
/// from outside (ingest a burst, poll a query until the count moves); this
/// tracer measures it from inside the write path itself:
///
///   * the ESP thread stamps the arrival time of the FIRST write into the
///     currently active delta (OnWrite, called from DeltaMainStore::Put /
///     Insert on success);
///   * the delta switch moves that stamp to the frozen side (OnSwap,
///     called inside the writer-quiescent swap window, so it can never
///     race with a stamp);
///   * when the merge publishes — the moment those writes become visible
///     to the next shared scan — the RTA thread records
///     `publish_time - first_write_time` (OnPublish, called at the end of
///     DeltaMainStore::MergeStep).
///
/// The oldest write of each merge window is exactly the worst-case
/// staleness of that cycle, so the resulting histogram is a distribution
/// of per-cycle maximum t_fresh — the quantity the SLA bounds.
///
/// Thread-safety: OnWrite is called by the single ESP writer; OnSwap and
/// OnPublish by the single RTA merger. window_ only changes inside the
/// swap's writer-quiescent window, and the SwapHandshake's release/acquire
/// pair orders the toggle before the writer's next operation — which is
/// why every access here can be relaxed.
class FreshnessTracer {
 public:
  /// `staleness_millis` receives one sample per non-empty merge window;
  /// must outlive the tracer. May be null (tracing disabled, hooks become
  /// cheap no-ops kept for branch-predictability).
  explicit FreshnessTracer(AtomicHistogram* staleness_millis)
      : staleness_millis_(staleness_millis) {}

  FreshnessTracer(const FreshnessTracer&) = delete;
  FreshnessTracer& operator=(const FreshnessTracer&) = delete;

  /// ESP thread, after a successful delta write. Hot path: one relaxed
  /// load plus, only for the first write of a window, one relaxed store.
  void OnWrite(std::int64_t now_nanos) {
    // relaxed: single-writer cells; the window index only moves while
    // this (ESP) thread is parked in the swap handshake, whose
    // release/acquire edge orders the toggle before our next call.
    const std::uint32_t w = window_.load(std::memory_order_relaxed);
    if (first_write_nanos_[w].load(std::memory_order_relaxed) == 0) {
      first_write_nanos_[w].store(now_nanos, std::memory_order_relaxed);
    }
  }

  /// RTA thread, inside the writer-quiescent swap window.
  void OnSwap() {
    // relaxed: runs inside the quiescent window — the ESP writer is
    // parked, and the handshake's release publishes the toggle to it.
    const std::uint32_t w = window_.load(std::memory_order_relaxed);
    window_.store(1 - w, std::memory_order_relaxed);
  }

  /// RTA thread, when the merged records become scan-visible.
  void OnPublish(std::int64_t now_nanos) {
    // relaxed: the frozen cell has no concurrent writer — the ESP thread
    // stamps the other window since the swap, ordered by the handshake.
    const std::uint32_t frozen = 1 - window_.load(std::memory_order_relaxed);
    const std::int64_t t0 =
        first_write_nanos_[frozen].exchange(0, std::memory_order_relaxed);
    if (t0 != 0 && staleness_millis_ != nullptr) {
      staleness_millis_->Record(static_cast<double>(now_nanos - t0) / 1e6);
    }
  }

 private:
  std::atomic<std::uint32_t> window_{0};
  std::atomic<std::int64_t> first_write_nanos_[2] = {};
  AtomicHistogram* staleness_millis_;
};

}  // namespace aim

#endif  // AIM_OBS_FRESHNESS_TRACER_H_
