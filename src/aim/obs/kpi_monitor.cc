#include "aim/obs/kpi_monitor.h"

#include <cstdio>

namespace aim {

KpiMonitor::KpiMonitor(Inputs inputs, const KpiTargets& targets)
    : in_(std::move(inputs)), targets_(targets) {
  // Baseline the cumulative sources so the first Sample() is a true
  // window, not "since process start".
  prev_events_ = Sum(in_.events);
  prev_queries_ = Sum(in_.queries);
  prev_esp_ = Merged(in_.esp_latency_micros);
  prev_rta_ = Merged(in_.rta_latency_micros);
  prev_fresh_ = Merged(in_.freshness_millis);
}

std::uint64_t KpiMonitor::Sum(const std::vector<const Counter*>& counters) {
  std::uint64_t total = 0;
  for (const Counter* c : counters) {
    if (c != nullptr) total += c->Value();
  }
  return total;
}

HistogramSnapshot KpiMonitor::Merged(
    const std::vector<const AtomicHistogram*>& hists) {
  HistogramSnapshot merged;
  for (const AtomicHistogram* h : hists) {
    if (h != nullptr) merged.Merge(h->Snapshot());
  }
  return merged;
}

KpiSample KpiMonitor::Sample() {
  KpiSample s;
  s.window_seconds = window_.ElapsedSeconds();
  window_.Restart();
  if (s.window_seconds <= 0.0) s.window_seconds = 1e-9;

  const std::uint64_t events = Sum(in_.events);
  const std::uint64_t queries = Sum(in_.queries);
  const HistogramSnapshot esp = Merged(in_.esp_latency_micros);
  const HistogramSnapshot rta = Merged(in_.rta_latency_micros);
  const HistogramSnapshot fresh = Merged(in_.freshness_millis);

  const std::uint64_t d_events = events - prev_events_;
  const std::uint64_t d_queries = queries - prev_queries_;
  const HistogramSnapshot d_esp = esp.Delta(prev_esp_);
  const HistogramSnapshot d_rta = rta.Delta(prev_rta_);
  const HistogramSnapshot d_fresh = fresh.Delta(prev_fresh_);
  prev_events_ = events;
  prev_queries_ = queries;
  prev_esp_ = esp;
  prev_rta_ = rta;
  prev_fresh_ = fresh;

  // t_ESP: window-mean event processing latency (micros -> ms).
  s.t_esp_ms = d_esp.Mean() / 1e3;
  s.t_esp_ok = d_esp.count > 0 && s.t_esp_ms <= targets_.t_esp_ms;

  // f_ESP: sustained events per entity per hour.
  if (in_.entities > 0) {
    s.f_esp_per_entity_hour = static_cast<double>(d_events) /
                              static_cast<double>(in_.entities) /
                              (s.window_seconds / 3600.0);
  }
  s.f_esp_ok = s.f_esp_per_entity_hour >= targets_.f_esp_per_hour;

  // t_RTA / f_RTA: window-mean query latency and throughput.
  s.t_rta_ms = d_rta.Mean() / 1e3;
  s.t_rta_ok = d_rta.count > 0 && s.t_rta_ms <= targets_.t_rta_ms;
  s.f_rta_qps = static_cast<double>(d_queries) / s.window_seconds;
  s.f_rta_ok = s.f_rta_qps >= targets_.f_rta_qps;

  // t_fresh: worst traced staleness in the window (bucket upper edge).
  // An idle window with no published merge cannot certify freshness.
  s.fresh_traced = d_fresh.count > 0;
  s.t_fresh_ms = s.fresh_traced ? d_fresh.Percentile(1.0) : 0.0;
  s.t_fresh_ok = s.fresh_traced && s.t_fresh_ms <= targets_.t_fresh_ms;

  return s;
}

std::string KpiSample::Render(const KpiTargets& targets) const {
  char buf[640];
  int n = std::snprintf(
      buf, sizeof(buf),
      "%-26s %10s %10s  %s\n", "KPI (live, last window)", "target",
      "measured", "verdict");
  auto row = [&](const char* name, double target, double measured, bool ok,
                 const char* note) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       "%-26s %10.1f %10.1f  %s%s\n", name, target, measured,
                       ok ? "PASS" : "MISS", note);
  };
  row("t_ESP (ms, mean)", targets.t_esp_ms, t_esp_ms, t_esp_ok, "");
  row("f_ESP (ev/entity/h)", targets.f_esp_per_hour, f_esp_per_entity_hour,
      f_esp_ok, "");
  row("t_RTA (ms, mean)", targets.t_rta_ms, t_rta_ms, t_rta_ok, "");
  row("f_RTA (q/s)", targets.f_rta_qps, f_rta_qps, f_rta_ok, "");
  row("t_fresh (ms, max)", targets.t_fresh_ms, t_fresh_ms, t_fresh_ok,
      fresh_traced ? " (traced)" : " (no merge in window)");
  return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace aim
