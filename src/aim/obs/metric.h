#ifndef AIM_OBS_METRIC_H_
#define AIM_OBS_METRIC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

namespace aim {

/// Always-on scalar metric primitives (docs/OBSERVABILITY.md). Design
/// rules, enforced by review and proven cheap by bench_kpi_check:
///
///   * every hot-path touch is exactly one relaxed atomic op — metrics
///     never order the data they describe, so no fence is ever paid;
///   * each metric object is cache-line aligned so one thread's counter
///     traffic cannot false-share with a neighbour's;
///   * metrics are owned by a MetricsRegistry (registry.h) and addressed
///     by stable name + labels; instrumented code holds raw pointers that
///     stay valid for the registry's lifetime.

/// Hardware cache-line size. std::hardware_destructive_interference_size
/// would be the standard spelling, but GCC warns that its value is ABI-
/// sensitive; 64 is correct for every x86-64 and mainstream ARM part.
inline constexpr std::size_t kCacheLineSize = 64;

/// Monotonically increasing counter. Single writer or many writers — the
/// fetch_add is atomic either way; prefer ShardedCounter when many threads
/// hammer the same logical counter.
class alignas(kCacheLineSize) Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t delta = 1) {
    // relaxed: monitoring counter; readers tolerate torn cross-counter
    // snapshots and never derive other shared state from the value.
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    // relaxed: see Add.
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (queue depths, delta sizes, epochs). Writers Set/Add;
/// readers see some recent value.
class alignas(kCacheLineSize) Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t v) {
    // relaxed: monitoring value; no reader derives shared state from it.
    value_.store(v, std::memory_order_relaxed);
  }

  void Add(std::int64_t delta) {
    // relaxed: see Set.
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  std::int64_t Value() const {
    // relaxed: see Set.
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Counter sharded across cache lines for write-contended call sites
/// (e.g. one logical "queries executed" counter incremented by every RTA
/// client thread). Each Add lands on the caller's home shard — picked by a
/// per-thread hash — so concurrent writers do not bounce one line between
/// cores. Value() sums the shards; like all metric reads it is a
/// monitoring snapshot, not a linearization point.
class ShardedCounter {
 public:
  static constexpr std::size_t kShards = 16;

  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(std::uint64_t delta = 1) { shards_[HomeShard()].Add(delta); }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Counter& shard : shards_) total += shard.Value();
    return total;
  }

 private:
  static std::size_t HomeShard() {
    // Hash the thread id once per thread; kShards is a power of two.
    static thread_local const std::size_t home =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) &
        (kShards - 1);
    return home;
  }

  Counter shards_[kShards];
};

}  // namespace aim

#endif  // AIM_OBS_METRIC_H_
