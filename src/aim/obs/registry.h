#ifndef AIM_OBS_REGISTRY_H_
#define AIM_OBS_REGISTRY_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aim/common/annotated_mutex.h"
#include "aim/obs/histogram.h"
#include "aim/obs/metric.h"

namespace aim {

/// Metric labels: key/value pairs, e.g. {{"node","0"},{"partition","3"}}.
/// Stored sorted by key so label order at the call site never creates
/// duplicate series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Owner of all metrics of one process/component. Instrumented code asks
/// once for a metric by stable name + labels and keeps the raw pointer —
/// pointers stay valid for the registry's lifetime, and repeated Get calls
/// with the same name+labels return the same object (so independent
/// subsystems can share a series). Registration takes a mutex (cold);
/// the returned objects are lock-free (metric.h / histogram.h).
///
/// Naming follows Prometheus conventions (docs/OBSERVABILITY.md):
/// `aim_<tier>_<what>[_total|_micros|_millis]`, unit suffix mandatory for
/// histograms. Asking for an existing name with a different metric type
/// is a bug and fails an AIM_CHECK.
///
/// Reads are snapshot-on-read: RenderPrometheus()/RenderJson() load each
/// atomic once; cross-metric views may be torn (monitoring semantics).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, Labels labels = {});
  ShardedCounter* GetShardedCounter(const std::string& name,
                                    Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  AtomicHistogram* GetHistogram(const std::string& name, Labels labels = {});

  /// Prometheus text exposition format (one # TYPE line per family,
  /// histograms as cumulative le-buckets + _sum/_count).
  std::string RenderPrometheus() const;

  /// JSON snapshot: {"counters":[...],"gauges":[...],"histograms":[...]}.
  /// Histograms carry count/mean/p50/p95/p99/max, not raw buckets.
  std::string RenderJson() const;

  std::size_t NumMetrics() const;

 private:
  enum class Type { kCounter, kShardedCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Labels labels;
    Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<ShardedCounter> sharded;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<AtomicHistogram> histogram;

    std::uint64_t CounterValue() const {
      return type == Type::kCounter ? counter->Value() : sharded->Value();
    }
  };

  Entry* FindOrCreate(const std::string& name, Labels labels, Type type)
      AIM_EXCLUDES(mu_);

  mutable Mutex mu_;
  // deque-of-unique_ptr semantics via vector<unique_ptr>: entries never
  // move, so metric pointers handed out stay stable across registrations.
  std::vector<std::unique_ptr<Entry>> entries_ AIM_GUARDED_BY(mu_);
};

}  // namespace aim

#endif  // AIM_OBS_REGISTRY_H_
