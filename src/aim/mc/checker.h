#ifndef AIM_MC_CHECKER_H_
#define AIM_MC_CHECKER_H_

// Public API of the aim::mc model checker: exhaustively explores thread
// interleavings of a test body built from the shim types in
// "aim/mc/shim.h", up to a configurable preemption bound.
//
//   mc::Options opts;
//   opts.preemption_bound = 2;
//   mc::Result r = mc::Check(opts, [](mc::Sim& sim) {
//     auto st = std::make_shared<State>();          // shim objects inside
//     sim.Spawn("writer", [st] { ... mc::McAssert(...); ... });
//     sim.Spawn("merger", [st] { ... });
//     sim.OnFinal([st] { mc::McAssert(st->total == 3, "conservation"); });
//   });
//   ASSERT_TRUE(r.ok()) << r.Report();
//
// The setup lambda runs once per explored execution and must be
// deterministic (no wall clock, no randomness); shared state must be kept
// alive by the thread closures (shared_ptr), so each execution starts
// fresh. A failing execution is reported with a human-readable trace and a
// schedule seed string; passing that string as Options::replay re-runs
// exactly that interleaving (e.g. while debugging with extra Notes).
//
// See docs/CORRECTNESS.md ("Model checking") for the design and for when
// to write an mc test vs a stress test.

#include <cstdint>
#include <functional>
#include <string>

#include "aim/mc/scheduler.h"

namespace aim {
namespace mc {

struct Options {
  /// Maximum number of times the explorer may switch away from a thread
  /// that could have kept running (context switches at blocking points are
  /// free). 2-3 finds most interleaving bugs (CHESS's empirical result)
  /// while keeping the schedule space small enough to exhaust.
  int preemption_bound = 2;

  /// Prune decision points whose (threads × objects) state hash was
  /// already explored with at least as much remaining preemption budget.
  /// Sound up to 64-bit hash collisions; disable to force a full DFS.
  bool state_caching = true;

  /// Replay exactly this schedule (a Result::failing_schedule string)
  /// instead of exploring. Empty = explore.
  std::string replay;

  /// Safety rails: exploration aborts with Result::error set (and
  /// complete = false) when exceeded — a signal the test body is too big
  /// for exhaustive checking, not a pass.
  std::uint64_t max_executions = 2'000'000;
  std::uint64_t max_steps_per_execution = 20'000;
};

struct Result {
  bool violation_found = false;
  /// True iff the bounded schedule space was fully explored. False when a
  /// violation stopped the search early, when replaying, or on error.
  bool complete = false;
  std::string failure;           // violation message (McAssert / deadlock)
  std::string failing_schedule;  // re-runnable seed string ("0.1.1.0...")
  std::string trace;             // human-readable failing interleaving
  std::string error;             // infrastructure error (limits, misuse)

  std::uint64_t executions = 0;  // schedules actually run
  std::uint64_t steps = 0;       // total schedule points executed
  std::uint64_t pruned = 0;      // decision points cut by the state cache
  int max_preemptions_used = 0;

  /// Passed: exhausted the space (or finished the replay) with no
  /// violation and no infrastructure error.
  bool ok() const { return !violation_found && error.empty(); }

  /// Multi-line summary: stats, and on failure the trace + seed string.
  std::string Report() const;
};

class Scheduler;

/// Per-execution handle given to the setup lambda.
class Sim {
 public:
  /// Spawns a virtual thread. Threads are scheduled only at shim
  /// operations; code between schedule points runs atomically.
  void Spawn(const char* name, std::function<void()> fn);

  /// Registers a hook that runs (in setup context) after every thread of a
  /// normally-finished execution has terminated; use for conservation /
  /// post-condition checks via McAssert.
  void OnFinal(std::function<void()> fn);

 private:
  friend class Scheduler;
  explicit Sim(Scheduler* scheduler) : scheduler_(scheduler) {}
  Scheduler* scheduler_;
};

/// Explores the interleavings of `setup`'s threads. Returns after the
/// space is exhausted, a violation is found, or a safety rail triggers.
/// Deterministic: identical inputs produce identical results and traces.
Result Check(const Options& options,
             const std::function<void(Sim&)>& setup);

}  // namespace mc
}  // namespace aim

#endif  // AIM_MC_CHECKER_H_
