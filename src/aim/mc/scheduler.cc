#include "aim/mc/scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "aim/mc/checker.h"

namespace aim {
namespace mc {
namespace {

/// splitmix64 finalizer: the mixing core of the state hash.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t Mix2(std::uint64_t a, std::uint64_t b) {
  return Mix(a ^ Mix(b));
}

const char* OpName(OpKind k) {
  switch (k) {
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kRmw: return "rmw";
    case OpKind::kMutexLock: return "lock";
    case OpKind::kMutexUnlock: return "unlock";
    case OpKind::kCondWait: return "cond-wait";
    case OpKind::kCondNotify: return "notify";
    case OpKind::kSpin: return "spin-pause";
  }
  return "?";
}

char ObjectPrefix(ObjectKind k) {
  switch (k) {
    case ObjectKind::kAtomic: return 'a';
    case ObjectKind::kMutex: return 'm';
    case ObjectKind::kCondVar: return 'c';
  }
  return '?';
}

/// Thrown inside a virtual thread to unwind it when the execution ends
/// early (violation found, branch pruned, or explorer teardown).
struct AbortExecution {};

enum class ThreadStatus : std::uint8_t {
  kRunnable,      // parked at a schedule point, eligible
  kBlockedMutex,  // pending lock on a held mutex
  kBlockedCond,   // inside CondWaitBlock, before any notify
  kBlockedSpin,   // inside SpinPause, no state change since parking
  kFinished,
};

}  // namespace

// =====================================================================
// Scheduler: one instance per mc::Check call; drives every execution.
// =====================================================================

class Scheduler {
 public:
  Scheduler(const Options& options, const std::function<void(Sim&)>& setup)
      : options_(options), setup_(setup) {}

  Result Explore();

  // ----- hooks called from shim / virtual threads (public for the free
  // functions below; not part of the user API) -----
  ObjectId RegisterObjectImpl(ObjectKind kind, std::uint64_t initial);
  void DestroyObjectImpl(ObjectId id);
  void AtOpPointImpl(OpKind kind, ObjectId obj, std::uint64_t arg);
  void ReportValueImpl(ObjectId obj, std::uint64_t value);
  void DriverOpValueImpl(ObjectId obj, std::uint64_t value);
  void SpinPauseImpl();
  void MutexLockImpl(ObjectId id);
  void MutexUnlockImpl(ObjectId id);
  void CondWaitBlockImpl(ObjectId cv, ObjectId mutex);
  void CondNotifyImpl(ObjectId cv);
  void FailImpl(const char* msg);
  void NoteImpl(const char* text);
  void SpawnImpl(const char* name, std::function<void()> fn);
  void OnFinalImpl(std::function<void()> fn);

 private:
  struct ThreadCtx {
    int tid = -1;
    std::string name;
    std::function<void()> fn;
    std::thread real;

    // Handoff (guarded by Scheduler::hm_).
    bool can_run = false;
    std::condition_variable wake;

    ThreadStatus status = ThreadStatus::kRunnable;
    OpKind pending_kind = OpKind::kLoad;
    ObjectId pending_obj = kNoObject;
    std::uint64_t pending_arg = 0;
    ObjectId reacquire_mutex = kNoObject;  // CondWait phase 2

    // Spin-loop modeling. A paused spinner may be blocked only while no
    // *other-thread* write has happened since its previous pause: the
    // failed loop iteration between the two pauses read its condition
    // somewhere in that window, so any other-thread write inside it might
    // not have been observed yet and must keep the spinner schedulable
    // (blocking on "no writes since the pause itself" loses wakeups that
    // landed between the condition load and the pause). Own writes are
    // excluded or a store-then-pause loop would keep itself awake forever.
    std::uint64_t own_writes = 0;
    std::uint64_t spin_baseline = 0;  // others-writes at the previous pause
    // While parked at a pause: the baseline the enabled-check compares
    // others-writes against (the previous pause's spin_baseline).
    std::uint64_t spin_seen_writes = 0;

    std::uint64_t obs_hash = 0;  // per-thread observation-sequence hash
  };

  struct ObjectInfo {
    ObjectKind kind = ObjectKind::kAtomic;
    bool alive = false;
    std::uint64_t value = 0;  // atomics: last written; mutex: owner+1
    std::uint64_t waiters = 0;  // condvar: xor-hash of waiting tids
    // Per-object operation serial, folded into the obs hash for
    // mutex/condvar ops: plain (uninstrumented) state guarded by a mutex
    // is a function of the *order* of critical sections, so two states may
    // only hash equal when their lock orders agree. Atomics rely on values
    // instead, which keeps value-equivalent interleavings prunable.
    std::uint64_t op_serial = 0;
  };

  struct Event {
    int tid;
    OpKind kind;
    ObjectId obj;
    std::uint64_t value;
    const char* note;  // non-null => annotation event
  };

  struct Decision {
    std::vector<int> enabled;  // canonical order (prev-thread first)
    int choice = 0;            // index into enabled
    int preemptions_before = 0;
    int prev_running = -1;
    bool prev_was_enabled = false;
  };

  // ----- execution driving -----
  void RunOneExecution();
  void DriveLoop();
  void ReleaseAndWait(ThreadCtx* t);
  void ParkCurrent(ThreadCtx* self);
  void AbortRemainingThreads();
  void JoinAllThreads();
  void ThreadMain(ThreadCtx* t);

  // ----- exploration bookkeeping -----
  std::vector<int> EnabledThreads(int prev) const;
  bool ThreadEnabled(const ThreadCtx& t) const;
  bool AdvanceDeepestDecision();  // backtrack; false => space exhausted
  int PreemptionCost(const Decision& d, int chosen) const;
  std::uint64_t StateKey() const;
  void RecordViolation(const std::string& msg);
  void SetError(const std::string& msg);
  std::string ScheduleString(std::size_t upto) const;
  std::string FormatTrace() const;
  std::string ObjName(ObjectId id) const;

  const Options& options_;
  const std::function<void(Sim&)>& setup_;

  // Persistent across executions.
  std::vector<Decision> stack_;
  std::unordered_map<std::uint64_t, int> state_cache_;
  std::vector<int> replay_;
  Result result_;
  bool stop_exploring_ = false;

  // Per-execution state.
  std::vector<std::unique_ptr<ThreadCtx>> threads_;
  std::vector<ObjectInfo> objects_;
  std::vector<Event> trace_;
  std::vector<int> schedule_;
  std::function<void()> final_hook_;
  std::size_t step_ = 0;
  int preemptions_ = 0;
  int prev_running_ = -1;
  std::uint64_t write_serial_ = 0;  // bumped on every state-changing op
  bool aborting_ = false;
  bool teardown_ = false;  // between end-of-drive and next execution
  bool violation_this_execution_ = false;
  bool pruned_this_execution_ = false;
  bool error_this_execution_ = false;

  // Handoff machinery: exactly one of {driver, one virtual thread} runs at
  // a time; hm_ serializes the baton passing.
  std::mutex hm_;
  std::condition_variable driver_wake_;
  int parked_signal_ = 0;  // incremented whenever a thread parks/finishes

  friend class Sim;
  friend Result Check(const Options&, const std::function<void(Sim&)>&);
};

namespace {

/// Active Check call (one at a time per process) and the virtual-thread
/// context of the calling OS thread.
Scheduler* g_active = nullptr;
thread_local void* tls_thread_ctx = nullptr;

}  // namespace

// ---------------------------------------------------------------------
// Free-function hooks (declared in scheduler.h).
// ---------------------------------------------------------------------

bool InSimulation() {
  return g_active != nullptr && tls_thread_ctx != nullptr;
}

ObjectId RegisterObject(ObjectKind kind, std::uint64_t initial_value) {
  if (g_active == nullptr) return kNoObject;
  return g_active->RegisterObjectImpl(kind, initial_value);
}

void DestroyObject(ObjectId id) {
  if (g_active == nullptr || id == kNoObject) return;
  g_active->DestroyObjectImpl(id);
}

void AtOpPoint(OpKind kind, ObjectId obj, std::uint64_t arg) {
  g_active->AtOpPointImpl(kind, obj, arg);
}

void ReportValue(ObjectId obj, std::uint64_t value) {
  g_active->ReportValueImpl(obj, value);
}

void DriverOpValue(ObjectId obj, std::uint64_t value) {
  if (g_active == nullptr || obj == kNoObject) return;
  g_active->DriverOpValueImpl(obj, value);
}

void SpinPause() {
  if (!InSimulation()) {
    std::this_thread::yield();
    return;
  }
  g_active->SpinPauseImpl();
}

void MutexLock(ObjectId id) { g_active->MutexLockImpl(id); }
void MutexUnlock(ObjectId id) { g_active->MutexUnlockImpl(id); }

void CondWaitBlock(ObjectId cv, ObjectId mutex) {
  g_active->CondWaitBlockImpl(cv, mutex);
}

void CondNotify(ObjectId cv) { g_active->CondNotifyImpl(cv); }

void McAssert(bool cond, const char* msg) {
  if (cond) return;
  if (g_active != nullptr) {
    g_active->FailImpl(msg);
    return;
  }
  throw std::logic_error(std::string("mc assertion failed outside Check: ") +
                         msg);
}

void Note(const char* text) {
  if (g_active == nullptr) return;
  g_active->NoteImpl(text);
}

// ---------------------------------------------------------------------
// Sim
// ---------------------------------------------------------------------

void Sim::Spawn(const char* name, std::function<void()> fn) {
  scheduler_->SpawnImpl(name, std::move(fn));
}

void Sim::OnFinal(std::function<void()> fn) {
  scheduler_->OnFinalImpl(std::move(fn));
}

// ---------------------------------------------------------------------
// Scheduler: shim hooks
// ---------------------------------------------------------------------

ObjectId Scheduler::RegisterObjectImpl(ObjectKind kind,
                                       std::uint64_t initial) {
  ObjectInfo info;
  info.kind = kind;
  info.alive = true;
  info.value = initial;
  objects_.push_back(info);
  return static_cast<ObjectId>(objects_.size() - 1);
}

void Scheduler::DestroyObjectImpl(ObjectId id) {
  if (id >= objects_.size()) return;
  ObjectInfo& o = objects_[id];
  if (!o.alive) return;
  o.alive = false;
  // After an aborted execution the registry may be mid-flight (a thread
  // unwound inside a critical section): teardown destructions are not
  // protocol violations.
  if (aborting_ || teardown_) return;
  // Record only — never throw from here: shim destructors call this, and
  // an exception escaping a destructor would terminate. The driver sees
  // the violation at the next schedule point and aborts the execution.
  if (o.kind == ObjectKind::kMutex && o.value != 0) {
    RecordViolation("mutex destroyed while held");
  }
  if (o.kind == ObjectKind::kCondVar && o.waiters != 0) {
    RecordViolation("condvar destroyed with blocked waiters");
  }
}

void Scheduler::AtOpPointImpl(OpKind kind, ObjectId obj, std::uint64_t arg) {
  // While an execution is being aborted, the only code running on virtual
  // threads is stack unwinding; destructors along the way (unique_lock,
  // guards) re-enter these hooks. They must neither park nor throw — a
  // second AbortExecution mid-unwind would std::terminate — so every hook
  // degrades to a no-op until teardown completes.
  if (aborting_) return;
  auto* self = static_cast<ThreadCtx*>(tls_thread_ctx);
  self->pending_kind = kind;
  self->pending_obj = obj;
  self->pending_arg = arg;
  self->status = ThreadStatus::kRunnable;
  ParkCurrent(self);
  // Scheduled: about to perform the op. Operating on a destroyed shim
  // object is the use-after-destroy bug class.
  if (obj != kNoObject && !objects_[obj].alive) {
    std::string msg = std::string(OpName(kind)) + " on destroyed object " +
                      ObjName(obj);
    FailImpl(msg.c_str());
  }
  trace_.push_back(Event{self->tid, kind, obj, arg, nullptr});
  if (kind == OpKind::kStore || kind == OpKind::kRmw) {
    ++write_serial_;
    ++self->own_writes;
  }
}

void Scheduler::ReportValueImpl(ObjectId obj, std::uint64_t value) {
  if (aborting_) return;  // see AtOpPointImpl
  auto* self = static_cast<ThreadCtx*>(tls_thread_ctx);
  if (!trace_.empty()) trace_.back().value = value;
  self->obs_hash = Mix2(self->obs_hash, Mix2(value, obj));
  if (obj != kNoObject &&
      (self->pending_kind == OpKind::kStore ||
       self->pending_kind == OpKind::kRmw)) {
    objects_[obj].value = value;
  }
}

void Scheduler::DriverOpValueImpl(ObjectId obj, std::uint64_t value) {
  objects_[obj].value = value;
}

void Scheduler::SpinPauseImpl() {
  if (aborting_) return;  // see AtOpPointImpl
  auto* self = static_cast<ThreadCtx*>(tls_thread_ctx);
  self->pending_kind = OpKind::kSpin;
  self->pending_obj = kNoObject;
  self->pending_arg = 0;
  self->status = ThreadStatus::kBlockedSpin;
  // Rotate the baseline: enabled iff others-writes-now differs from the
  // others-writes count at the *previous* pause (see ThreadCtx).
  const std::uint64_t others_now = write_serial_ - self->own_writes;
  const std::uint64_t prev_baseline = self->spin_baseline;
  self->spin_baseline = others_now;
  self->spin_seen_writes = prev_baseline;
  ParkCurrent(self);
  trace_.push_back(Event{self->tid, OpKind::kSpin, kNoObject, 0, nullptr});
  self->obs_hash = Mix2(self->obs_hash, 0x5f1d);
}

void Scheduler::MutexLockImpl(ObjectId id) {
  if (aborting_) return;  // see AtOpPointImpl
  auto* self = static_cast<ThreadCtx*>(tls_thread_ctx);
  self->pending_kind = OpKind::kMutexLock;
  self->pending_obj = id;
  self->pending_arg = 0;
  self->status = ThreadStatus::kBlockedMutex;
  ParkCurrent(self);
  if (!objects_[id].alive) FailImpl("lock on destroyed mutex");
  // The driver only schedules a lock-blocked thread when the mutex is
  // free; take ownership now.
  ObjectInfo& m = objects_[id];
  if (m.value != 0) FailImpl("internal: scheduled lock on held mutex");
  m.value = static_cast<std::uint64_t>(self->tid) + 1;
  trace_.push_back(Event{self->tid, OpKind::kMutexLock, id, 0, nullptr});
  self->obs_hash =
      Mix2(self->obs_hash, Mix2(0x10c8, Mix2(id, ++m.op_serial)));
}

void Scheduler::MutexUnlockImpl(ObjectId id) {
  if (aborting_) return;  // see AtOpPointImpl
  auto* self = static_cast<ThreadCtx*>(tls_thread_ctx);
  // Unlock is not a schedule point and must never park or throw: the std
  // guard destructors (~lock_guard, ~unique_lock) reach here from noexcept
  // frames, where an AbortExecution unwinding out would std::terminate.
  // Folding the release into the current step loses no interleavings —
  // its only shared effect is freeing the mutex, which commutes with every
  // other thread's op except a lock of this same mutex, and "attempt the
  // lock before the release, block, acquire after" reaches the state
  // "attempt after the release, acquire directly" already covers. Misuse
  // is recorded rather than thrown (same pattern as DestroyObjectImpl);
  // the driver aborts at the next schedule point.
  ObjectInfo& m = objects_[id];
  if (!m.alive) {
    RecordViolation("unlock on destroyed mutex");
    return;
  }
  if (m.value != static_cast<std::uint64_t>(self->tid) + 1) {
    RecordViolation("unlock of a mutex not held by this thread");
    return;
  }
  m.value = 0;
  ++write_serial_;  // lock-blocked and spin-blocked threads may wake
  ++self->own_writes;
  trace_.push_back(Event{self->tid, OpKind::kMutexUnlock, id, 0, nullptr});
  self->obs_hash =
      Mix2(self->obs_hash, Mix2(0xc10u, Mix2(id, ++m.op_serial)));
}

void Scheduler::CondWaitBlockImpl(ObjectId cv, ObjectId mutex) {
  if (aborting_) return;  // see AtOpPointImpl
  auto* self = static_cast<ThreadCtx*>(tls_thread_ctx);
  // Atomically release the mutex and begin waiting: both effects happen
  // within the calling thread's current step, before any other thread can
  // run.
  if (!objects_[cv].alive) FailImpl("wait on destroyed condvar");
  ObjectInfo& m = objects_[mutex];
  if (m.value != static_cast<std::uint64_t>(self->tid) + 1) {
    FailImpl("CondVar::wait with a mutex not held by this thread");
  }
  m.value = 0;
  ++write_serial_;
  ++self->own_writes;
  objects_[cv].waiters ^= Mix(static_cast<std::uint64_t>(self->tid) + 1);
  trace_.push_back(Event{self->tid, OpKind::kCondWait, cv, 0, nullptr});
  self->pending_kind = OpKind::kCondWait;
  self->pending_obj = cv;
  self->pending_arg = 0;
  self->reacquire_mutex = mutex;
  self->status = ThreadStatus::kBlockedCond;
  ParkCurrent(self);
  // Woken by a notify and scheduled: the driver only schedules us once the
  // mutex is free again (status was moved to kBlockedMutex by the notify).
  if (!objects_[cv].alive) FailImpl("woke on destroyed condvar");
  ObjectInfo& m2 = objects_[mutex];
  if (!objects_[mutex].alive) FailImpl("reacquire of destroyed mutex");
  if (m2.value != 0) FailImpl("internal: scheduled cond-wake on held mutex");
  m2.value = static_cast<std::uint64_t>(self->tid) + 1;
  trace_.push_back(
      Event{self->tid, OpKind::kMutexLock, mutex, 1, nullptr});
  self->obs_hash = Mix2(
      self->obs_hash, Mix2(0xc04d, Mix2(cv, ++objects_[mutex].op_serial)));
  self->reacquire_mutex = kNoObject;
}

void Scheduler::CondNotifyImpl(ObjectId cv) {
  if (aborting_) return;  // see AtOpPointImpl
  auto* self = static_cast<ThreadCtx*>(tls_thread_ctx);
  self->pending_kind = OpKind::kCondNotify;
  self->pending_obj = cv;
  self->pending_arg = 0;
  self->status = ThreadStatus::kRunnable;
  ParkCurrent(self);
  if (!objects_[cv].alive) FailImpl("notify on destroyed condvar");
  // Wake every waiter (see shim.h): each moves to the lock-reacquire
  // phase, schedulable once the associated mutex is free.
  for (auto& tptr : threads_) {
    ThreadCtx& t = *tptr;
    if (t.status == ThreadStatus::kBlockedCond && t.pending_obj == cv) {
      objects_[cv].waiters ^= Mix(static_cast<std::uint64_t>(t.tid) + 1);
      t.status = ThreadStatus::kBlockedMutex;
      t.pending_kind = OpKind::kMutexLock;
      t.pending_obj = t.reacquire_mutex;
    }
  }
  ++write_serial_;
  ++self->own_writes;
  trace_.push_back(Event{self->tid, OpKind::kCondNotify, cv, 0, nullptr});
  self->obs_hash = Mix2(
      self->obs_hash, Mix2(0x4071f, Mix2(cv, ++objects_[cv].op_serial)));
}

void Scheduler::FailImpl(const char* msg) {
  if (aborting_) return;  // see AtOpPointImpl
  RecordViolation(msg);
  if (tls_thread_ctx != nullptr) throw AbortExecution{};
}

void Scheduler::NoteImpl(const char* text) {
  if (aborting_) return;  // see AtOpPointImpl
  int tid = -1;
  if (auto* self = static_cast<ThreadCtx*>(tls_thread_ctx)) tid = self->tid;
  trace_.push_back(Event{tid, OpKind::kLoad, kNoObject, 0, text});
}

void Scheduler::SpawnImpl(const char* name, std::function<void()> fn) {
  auto ctx = std::make_unique<ThreadCtx>();
  ctx->tid = static_cast<int>(threads_.size());
  ctx->name = name;
  ctx->fn = std::move(fn);
  ThreadCtx* t = ctx.get();
  threads_.push_back(std::move(ctx));
  // The real thread runs the body eagerly up to its *first* schedule point
  // (plain prologue code only — no shim op executes), then parks. This
  // keeps "thread started" from being a wasted scheduling choice.
  t->real = std::thread([this, t] { ThreadMain(t); });
  std::unique_lock<std::mutex> lk(hm_);
  int seen = parked_signal_;
  t->can_run = true;
  t->wake.notify_one();
  driver_wake_.wait(lk, [&] { return parked_signal_ != seen; });
}

void Scheduler::OnFinalImpl(std::function<void()> fn) {
  final_hook_ = std::move(fn);
}

// ---------------------------------------------------------------------
// Scheduler: thread handoff
// ---------------------------------------------------------------------

void Scheduler::ThreadMain(ThreadCtx* t) {
  tls_thread_ctx = t;
  {
    // Wait for the initial baton from SpawnImpl.
    std::unique_lock<std::mutex> lk(hm_);
    t->wake.wait(lk, [&] { return t->can_run; });
    t->can_run = false;
  }
  try {
    t->fn();
  } catch (const AbortExecution&) {
    // Unwound deliberately (violation / prune / teardown).
  }
  tls_thread_ctx = nullptr;
  std::unique_lock<std::mutex> lk(hm_);
  t->status = ThreadStatus::kFinished;
  ++parked_signal_;
  driver_wake_.notify_one();
}

void Scheduler::ParkCurrent(ThreadCtx* self) {
  std::unique_lock<std::mutex> lk(hm_);
  ++parked_signal_;
  driver_wake_.notify_one();
  self->wake.wait(lk, [&] { return self->can_run; });
  self->can_run = false;
  if (aborting_) {
    lk.unlock();
    throw AbortExecution{};
  }
}

void Scheduler::ReleaseAndWait(ThreadCtx* t) {
  std::unique_lock<std::mutex> lk(hm_);
  int seen = parked_signal_;
  t->can_run = true;
  t->wake.notify_one();
  driver_wake_.wait(lk, [&] { return parked_signal_ != seen; });
}

void Scheduler::AbortRemainingThreads() {
  aborting_ = true;
  for (auto& tptr : threads_) {
    ThreadCtx& t = *tptr;
    while (t.status != ThreadStatus::kFinished) {
      ReleaseAndWait(&t);
    }
  }
  aborting_ = false;
}

void Scheduler::JoinAllThreads() {
  for (auto& tptr : threads_) {
    if (tptr->real.joinable()) tptr->real.join();
  }
}

// ---------------------------------------------------------------------
// Scheduler: exploration
// ---------------------------------------------------------------------

bool Scheduler::ThreadEnabled(const ThreadCtx& t) const {
  switch (t.status) {
    case ThreadStatus::kRunnable:
      return true;
    case ThreadStatus::kBlockedMutex:
      return objects_[t.pending_obj].value == 0;
    case ThreadStatus::kBlockedCond:
      return false;  // needs a notify first
    case ThreadStatus::kBlockedSpin:
      return (write_serial_ - t.own_writes) != t.spin_seen_writes;
    case ThreadStatus::kFinished:
      return false;
  }
  return false;
}

std::vector<int> Scheduler::EnabledThreads(int prev) const {
  std::vector<int> enabled;
  // Canonical order: the previously running thread first (so the default
  // choice never preempts), then ascending tid.
  if (prev >= 0 && ThreadEnabled(*threads_[prev])) enabled.push_back(prev);
  for (const auto& tptr : threads_) {
    if (tptr->tid == prev) continue;
    if (ThreadEnabled(*tptr)) enabled.push_back(tptr->tid);
  }
  return enabled;
}

int Scheduler::PreemptionCost(const Decision& d, int chosen) const {
  if (d.prev_running < 0) return 0;
  if (chosen == d.prev_running) return 0;
  return d.prev_was_enabled ? 1 : 0;
}

std::uint64_t Scheduler::StateKey() const {
  // Order-insensitive combine of per-thread and per-object components:
  // sound modulo 64-bit collisions (each component strongly mixed).
  std::uint64_t h = 0x9ae16a3b2f90404fULL;
  for (const auto& tptr : threads_) {
    const ThreadCtx& t = *tptr;
    std::uint64_t status = static_cast<std::uint64_t>(t.status);
    if (t.status == ThreadStatus::kBlockedSpin) {
      status |= ((write_serial_ - t.own_writes) != t.spin_seen_writes)
                    ? 0x100
                    : 0x200;
    }
    h ^= Mix(Mix2(static_cast<std::uint64_t>(t.tid),
                  Mix2(t.obs_hash, status)));
  }
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    const ObjectInfo& o = objects_[i];
    if (!o.alive) continue;
    h ^= Mix(Mix2(i, Mix2(o.value, o.waiters)));
  }
  return h;
}

void Scheduler::RecordViolation(const std::string& msg) {
  if (violation_this_execution_) return;  // keep the first
  violation_this_execution_ = true;
  result_.violation_found = true;
  result_.failure = msg;
  result_.failing_schedule = ScheduleString(schedule_.size());
  if (tls_thread_ctx != nullptr) {
    auto* self = static_cast<ThreadCtx*>(tls_thread_ctx);
    trace_.push_back(Event{self->tid, OpKind::kLoad, kNoObject, 0,
                           "VIOLATION (see failure message)"});
  }
  result_.trace = FormatTrace();
}

void Scheduler::SetError(const std::string& msg) {
  if (result_.error.empty()) result_.error = msg;
  error_this_execution_ = true;
}

std::string Scheduler::ScheduleString(std::size_t upto) const {
  std::string s;
  for (std::size_t i = 0; i < upto && i < schedule_.size(); ++i) {
    if (!s.empty()) s += '.';
    s += std::to_string(schedule_[i]);
  }
  return s;
}

std::string Scheduler::ObjName(ObjectId id) const {
  if (id == kNoObject) return "-";
  return std::string(1, ObjectPrefix(objects_[id].kind)) +
         std::to_string(id);
}

std::string Scheduler::FormatTrace() const {
  std::ostringstream os;
  int step = 0;
  for (const Event& e : trace_) {
    const char* name =
        (e.tid >= 0 && e.tid < static_cast<int>(threads_.size()))
            ? threads_[e.tid]->name.c_str()
            : "setup";
    if (e.note != nullptr) {
      os << "        [" << name << "] -- " << e.note << "\n";
      continue;
    }
    os << "  #" << step++ << "\t[" << name << "] " << OpName(e.kind);
    if (e.obj != kNoObject) os << " " << ObjName(e.obj);
    if (e.kind == OpKind::kLoad || e.kind == OpKind::kStore ||
        e.kind == OpKind::kRmw) {
      os << " = " << e.value;
    }
    os << "\n";
  }
  return os.str();
}

void Scheduler::DriveLoop() {
  while (true) {
    if (violation_this_execution_ || error_this_execution_) return;
    bool all_finished = true;
    for (const auto& t : threads_) {
      if (t->status != ThreadStatus::kFinished) all_finished = false;
    }
    if (all_finished) return;

    std::vector<int> enabled = EnabledThreads(prev_running_);
    if (enabled.empty()) {
      RecordViolation(
          "deadlock: no runnable thread (lost wakeup, stuck spin loop, or "
          "lock cycle)");
      return;
    }
    if (step_ >= options_.max_steps_per_execution) {
      SetError("max_steps_per_execution exceeded — body too large for "
               "exhaustive checking");
      return;
    }

    int choice_idx;
    if (!replay_.empty()) {
      // Replay mode: follow the recorded schedule; default policy once it
      // is exhausted.
      int want = step_ < replay_.size() ? replay_[step_] : enabled[0];
      auto it = std::find(enabled.begin(), enabled.end(), want);
      if (it == enabled.end()) {
        SetError("replay diverged: scheduled thread not enabled at step " +
                 std::to_string(step_));
        return;
      }
      choice_idx = static_cast<int>(it - enabled.begin());
    } else if (step_ < stack_.size()) {
      Decision& d = stack_[step_];
      if (d.enabled != enabled) {
        SetError("nondeterministic test body: enabled set changed on "
                 "re-execution at step " +
                 std::to_string(step_));
        return;
      }
      choice_idx = d.choice;
    } else {
      // Frontier: optionally prune via the state cache, else push a new
      // decision point with the non-preempting default choice.
      if (options_.state_caching) {
        std::uint64_t key = StateKey();
        int budget = options_.preemption_bound - preemptions_;
        auto it = state_cache_.find(key);
        if (it != state_cache_.end() && it->second >= budget) {
          ++result_.pruned;
          pruned_this_execution_ = true;
          return;
        }
        if (it == state_cache_.end()) {
          state_cache_.emplace(key, budget);
        } else {
          it->second = budget;
        }
      }
      Decision d;
      d.enabled = enabled;
      d.choice = 0;
      d.preemptions_before = preemptions_;
      d.prev_running = prev_running_;
      d.prev_was_enabled =
          prev_running_ >= 0 && enabled.size() > 0 &&
          std::find(enabled.begin(), enabled.end(), prev_running_) !=
              enabled.end();
      stack_.push_back(std::move(d));
      choice_idx = 0;
    }

    int tid = enabled[choice_idx];
    if (replay_.empty() && step_ < stack_.size()) {
      preemptions_ += PreemptionCost(stack_[step_], tid);
    } else if (prev_running_ >= 0 && tid != prev_running_ &&
               std::find(enabled.begin(), enabled.end(), prev_running_) !=
                   enabled.end()) {
      preemptions_ += 1;  // replay-mode accounting (stats only)
    }
    result_.max_preemptions_used =
        std::max(result_.max_preemptions_used, preemptions_);
    schedule_.push_back(tid);
    ++step_;
    ++result_.steps;
    ReleaseAndWait(threads_[tid].get());
    prev_running_ = tid;
  }
}

void Scheduler::RunOneExecution() {
  threads_.clear();
  objects_.clear();
  trace_.clear();
  schedule_.clear();
  final_hook_ = nullptr;
  step_ = 0;
  preemptions_ = 0;
  prev_running_ = -1;
  write_serial_ = 0;
  aborting_ = false;
  teardown_ = false;
  violation_this_execution_ = false;
  pruned_this_execution_ = false;
  error_this_execution_ = false;

  Sim sim(this);
  setup_(sim);

  DriveLoop();

  bool finished_normally = !violation_this_execution_ &&
                           !pruned_this_execution_ &&
                           !error_this_execution_;
  if (!finished_normally) {
    AbortRemainingThreads();
  }
  if (finished_normally && final_hook_) {
    final_hook_();  // driver context; McAssert records violations
  }
  // Drop closures (and with them the shared test state) before joining so
  // shim destructors run while this execution's registry is still active;
  // teardown destructions are exempt from protocol checks.
  teardown_ = true;
  final_hook_ = nullptr;
  for (auto& t : threads_) t->fn = nullptr;
  JoinAllThreads();
  ++result_.executions;
}

bool Scheduler::AdvanceDeepestDecision() {
  while (!stack_.empty()) {
    Decision& d = stack_.back();
    int next = d.choice + 1;
    while (next < static_cast<int>(d.enabled.size())) {
      int cost = PreemptionCost(d, d.enabled[next]);
      if (d.preemptions_before + cost <= options_.preemption_bound) break;
      ++next;
    }
    if (next < static_cast<int>(d.enabled.size())) {
      d.choice = next;
      return true;
    }
    stack_.pop_back();
  }
  return false;
}

Result Scheduler::Explore() {
  if (!options_.replay.empty()) {
    // Parse "0.1.1.0" into the forced schedule.
    std::istringstream is(options_.replay);
    std::string tok;
    while (std::getline(is, tok, '.')) {
      replay_.push_back(std::stoi(tok));
    }
    RunOneExecution();
    return result_;
  }

  while (true) {
    RunOneExecution();
    if (violation_this_execution_ || !result_.error.empty()) break;
    if (result_.executions >= options_.max_executions) {
      SetError("max_executions exceeded before exhausting the schedule "
               "space");
      break;
    }
    if (!AdvanceDeepestDecision()) {
      result_.complete = true;
      break;
    }
  }
  return result_;
}

std::string Result::Report() const {
  std::ostringstream os;
  os << (violation_found ? "VIOLATION" : (error.empty() ? "ok" : "ERROR"))
     << ": executions=" << executions << " steps=" << steps
     << " pruned=" << pruned << " complete=" << (complete ? "yes" : "no")
     << " max_preemptions=" << max_preemptions_used << "\n";
  if (!failure.empty()) os << "failure: " << failure << "\n";
  if (!error.empty()) os << "error: " << error << "\n";
  if (!failing_schedule.empty()) {
    os << "failing schedule (replay seed): " << failing_schedule << "\n";
  }
  if (!trace.empty()) os << "trace:\n" << trace;
  return os.str();
}

Result Check(const Options& options,
             const std::function<void(Sim&)>& setup) {
  if (g_active != nullptr) {
    throw std::logic_error("mc::Check calls cannot nest");
  }
  Scheduler scheduler(options, setup);
  g_active = &scheduler;
  Result result;
  try {
    result = scheduler.Explore();
  } catch (...) {
    g_active = nullptr;
    throw;
  }
  g_active = nullptr;
  return result;
}

}  // namespace mc
}  // namespace aim
