#ifndef AIM_MC_SHIM_H_
#define AIM_MC_SHIM_H_

// Instrumented drop-ins for std::atomic / std::mutex /
// std::condition_variable that route every operation through the mc
// scheduler as a schedule point. Production code never includes this
// header: protocol templates (SwapHandshake, BasicDenseMap, MpscQueue) are
// parameterized on a sync provider, instantiated with RealSyncProvider
// (plain std types, see aim/common/sync_provider.h) in production and with
// ModelSyncProvider here under the checker — so the code the checker
// explores *is* the production code.
//
// Outside an active mc::Check execution the shim types degrade to plain
// single-threaded objects, so state may be constructed and inspected from
// setup / OnFinal hooks.
//
// Ordering arguments are accepted for signature parity and ignored: the
// checker explores interleavings under sequential consistency (see
// scheduler.h). Memory_order bugs are TSan's department.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "aim/common/annotated_mutex.h"
#include "aim/mc/scheduler.h"

namespace aim {
namespace mc {

namespace internal {
/// Shim objects fold their value into the explorer's state hash; anything
/// std::atomic-able in this codebase (ints, bools, pointers) fits in 8
/// bytes.
template <typename T>
std::uint64_t ToBits(T v) {
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "mc::Atomic supports values up to 8 bytes");
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(T));
  return bits;
}
}  // namespace internal

/// Drop-in for std::atomic<T> (the subset this codebase uses). Every
/// load/store/RMW is a schedule point while a checked execution is active.
// seq_cst: default arguments mirror std::atomic's signatures only; the
// checker ignores ordering arguments entirely (see header comment).
template <typename T>
class Atomic {
 public:
  Atomic() : Atomic(T{}) {}
  explicit Atomic(T initial) : value_(initial) {
    id_ = RegisterObject(ObjectKind::kAtomic, internal::ToBits(initial));
  }
  ~Atomic() { DestroyObject(id_); }

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  // seq_cst: std::atomic signature parity; ordering is ignored (see above).
  T load(std::memory_order = std::memory_order_seq_cst) const {
    if (!InSimulation()) return value_;
    AtOpPoint(OpKind::kLoad, id_, 0);
    T v = value_;
    ReportValue(id_, internal::ToBits(v));
    return v;
  }

  // seq_cst: std::atomic signature parity; ordering is ignored (see above).
  void store(T v, std::memory_order = std::memory_order_seq_cst) {
    if (!InSimulation()) {
      value_ = v;
      DriverOpValue(id_, internal::ToBits(v));
      return;
    }
    AtOpPoint(OpKind::kStore, id_, internal::ToBits(v));
    value_ = v;
    ReportValue(id_, internal::ToBits(v));
  }

  // seq_cst: std::atomic signature parity; ordering is ignored (see above).
  T fetch_add(T delta, std::memory_order = std::memory_order_seq_cst) {
    if (!InSimulation()) {
      T old = value_;
      value_ = static_cast<T>(value_ + delta);
      DriverOpValue(id_, internal::ToBits(value_));
      return old;
    }
    AtOpPoint(OpKind::kRmw, id_, internal::ToBits(delta));
    T old = value_;
    value_ = static_cast<T>(value_ + delta);
    ReportValue(id_, internal::ToBits(value_));
    return old;
  }

  // seq_cst: std::atomic signature parity; ordering is ignored (see above).
  T fetch_sub(T delta, std::memory_order = std::memory_order_seq_cst) {
    if (!InSimulation()) {
      T old = value_;
      value_ = static_cast<T>(value_ - delta);
      DriverOpValue(id_, internal::ToBits(value_));
      return old;
    }
    AtOpPoint(OpKind::kRmw, id_, internal::ToBits(delta));
    T old = value_;
    value_ = static_cast<T>(value_ - delta);
    ReportValue(id_, internal::ToBits(value_));
    return old;
  }

  // seq_cst: std::atomic signature parity; ordering is ignored (see above).
  T exchange(T v, std::memory_order = std::memory_order_seq_cst) {
    if (!InSimulation()) {
      T old = value_;
      value_ = v;
      DriverOpValue(id_, internal::ToBits(v));
      return old;
    }
    AtOpPoint(OpKind::kRmw, id_, internal::ToBits(v));
    T old = value_;
    value_ = v;
    ReportValue(id_, internal::ToBits(v));
    return old;
  }

  // seq_cst: std::atomic signature parity; ordering is ignored (see above).
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order = std::memory_order_seq_cst) {
    if (!InSimulation()) {
      if (value_ == expected) {
        value_ = desired;
        DriverOpValue(id_, internal::ToBits(desired));
        return true;
      }
      expected = value_;
      return false;
    }
    AtOpPoint(OpKind::kRmw, id_, internal::ToBits(desired));
    bool success = (value_ == expected);
    if (success) {
      value_ = desired;
    } else {
      expected = value_;
    }
    ReportValue(id_, internal::ToBits(value_));
    return success;
  }

 private:
  T value_;
  ObjectId id_;
};

/// Drop-in for std::mutex. Lock/unlock are schedule points; the scheduler
/// blocks lock() while another virtual thread holds the mutex and flags
/// destroy-while-held / use-after-destroy as violations. Carries the same
/// capability annotation as aim::Mutex so protocol templates annotated
/// with AIM_GUARDED_BY stay analyzable in their mc instantiations.
class AIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() { id_ = RegisterObject(ObjectKind::kMutex, 0); }
  ~Mutex() { DestroyObject(id_); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AIM_ACQUIRE() {
    if (!InSimulation()) {
      plain_locked_ = true;
      return;
    }
    MutexLock(id_);
  }

  void unlock() AIM_RELEASE() {
    if (!InSimulation()) {
      plain_locked_ = false;
      return;
    }
    MutexUnlock(id_);
  }

 private:
  friend class CondVar;
  ObjectId id_;
  bool plain_locked_ = false;  // driver-context bookkeeping only
};

/// Scoped lock over mc::Mutex — the shim counterpart of aim::MutexLock
/// (RealSyncProvider::UniqueLock). mutex() gives CondVar::wait the object
/// identity it reports to the scheduler.
class AIM_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) AIM_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~UniqueLock() AIM_RELEASE() { mu_->unlock(); }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  Mutex* mutex() const { return mu_; }

 private:
  Mutex* mu_;
};

/// Drop-in for std::condition_variable, against mc::Mutex. Notifies wake
/// every waiter (sound over-approximation, doubles as the spurious-wakeup
/// model); predicates are re-checked in a loop exactly as with the real
/// type. Notifying or waiting on a destroyed condvar is a violation — the
/// bug class MpscQueue's notify-under-lock rule exists to prevent.
class CondVar {
 public:
  CondVar() { id_ = RegisterObject(ObjectKind::kCondVar, 0); }
  ~CondVar() { DestroyObject(id_); }

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// `Lock` is any lock wrapper over mc::Mutex with mutex() access via
  /// std::unique_lock / std::lock_guard-compatible ownership semantics.
  template <typename Lock, typename Pred>
  void wait(Lock& lock, Pred pred) {
    while (!pred()) {
      if (!InSimulation()) {
        // Driver-context waits cannot be woken (single-threaded): a false
        // predicate here is a deadlock in the test body.
        McAssert(false, "CondVar::wait with false predicate outside sim");
        return;
      }
      CondWaitBlock(id_, lock.mutex()->id_);
    }
  }

  /// Single wait, re-checked by the caller's explicit predicate loop —
  /// mirror of aim::CondVar::wait(MutexLock&), which production code uses
  /// so guarded-field predicates stay visible to the thread-safety
  /// analysis (see annotated_mutex.h).
  template <typename Lock>
  void wait(Lock& lock) {
    if (!InSimulation()) {
      // Driver-context waits cannot be woken (single-threaded): reaching a
      // wait at all is a deadlock in the test body.
      McAssert(false, "CondVar::wait outside sim");
      return;
    }
    CondWaitBlock(id_, lock.mutex()->id_);
  }

  void notify_one() { Notify(); }
  void notify_all() { Notify(); }

 private:
  void Notify() {
    if (!InSimulation()) return;
    CondNotify(id_);
  }

  ObjectId id_;
};

/// Sync provider instantiating the protocol templates with the shim types
/// (counterpart of aim::RealSyncProvider).
struct ModelSyncProvider {
  template <typename T>
  using Atomic = mc::Atomic<T>;
  using AtomicBool = mc::Atomic<bool>;
  using Mutex = mc::Mutex;
  using CondVar = mc::CondVar;
  using UniqueLock = mc::UniqueLock;

  /// Spin-throttle hook: under the checker a failed spin blocks the thread
  /// until another thread writes, keeping the DFS finite (scheduler.h).
  static void Pause(int /*spins*/) { SpinPause(); }
};

}  // namespace mc
}  // namespace aim

#endif  // AIM_MC_SHIM_H_
