#ifndef AIM_MC_SCHEDULER_H_
#define AIM_MC_SCHEDULER_H_

// Internal engine of the aim::mc model checker. Test code should include
// "aim/mc/checker.h" (the Check/Options/Result API) and "aim/mc/shim.h"
// (the instrumented Atomic/Mutex/CondVar types); this header declares the
// hooks the shim routes through and is an implementation detail.
//
// Execution model (CHESS/Loom style, sequentially consistent):
//   * every shim operation (atomic load/store/RMW, mutex lock/unlock,
//     condvar wait/notify, spin pause) is a *schedule point*: the virtual
//     thread parks before the operation and the explorer decides which
//     parked thread performs its pending operation next;
//   * exactly one virtual thread runs at a time, so the "atomics" are plain
//     memory underneath — what is explored is the interleaving of the
//     operations, under sequential consistency (weak-memory reorderings are
//     out of scope; the TSan stress tier covers those statistically);
//   * the explorer enumerates interleavings depth-first up to a preemption
//     bound, pruning states already explored via a state hash.

#include <cstdint>

namespace aim {
namespace mc {

using ObjectId = std::uint32_t;
inline constexpr ObjectId kNoObject = 0xffffffffu;

enum class ObjectKind : std::uint8_t { kAtomic, kMutex, kCondVar };

enum class OpKind : std::uint8_t {
  kLoad,
  kStore,
  kRmw,
  kMutexLock,
  kMutexUnlock,
  kCondWait,
  kCondNotify,
  kSpin,
};

// ---------------------------------------------------------------------
// Hooks the shim (shim.h) routes through. All are no-ops / plain behavior
// when no checked execution is active, so shim types degrade gracefully to
// ordinary single-threaded objects outside mc::Check.
// ---------------------------------------------------------------------

/// True iff the calling thread is a virtual thread of an active execution.
bool InSimulation();

/// Registers a shim object with the active execution; kNoObject when none.
ObjectId RegisterObject(ObjectKind kind, std::uint64_t initial_value);

/// Marks a shim object destroyed. Later operations on it are violations.
void DestroyObject(ObjectId id);

/// Parks the calling virtual thread at a schedule point for `kind` on
/// `obj`; returns when the explorer schedules this thread to perform the
/// operation. `arg` is the value being stored / added (trace + state hash).
void AtOpPoint(OpKind kind, ObjectId obj, std::uint64_t arg);

/// Reports the value produced by the op the thread was just scheduled to
/// perform (the loaded value, or the value now held after a store/RMW).
/// Folds it into the trace, the thread's observation hash, and — for
/// writes — the object's tracked value.
void ReportValue(ObjectId obj, std::uint64_t value);

/// Records the value of a shim object mutated from *driver* context
/// (setup / final hooks run outside any virtual thread).
void DriverOpValue(ObjectId obj, std::uint64_t value);

/// Spin-loop pause: blocks the virtual thread until another thread
/// performs a state-changing operation (store/RMW/unlock/notify). A plain
/// retry loop would otherwise give the DFS an infinite "keep spinning"
/// branch; blocking-until-change keeps exploration finite and models
/// exactly the schedules where the spin can observe something new.
void SpinPause();

/// Mutex acquire: schedule point that is enabled only while the mutex is
/// free; the scheduler transfers ownership before waking the thread.
void MutexLock(ObjectId id);

/// Mutex release: schedule point; re-enables lock waiters.
void MutexUnlock(ObjectId id);

/// Condvar wait: atomically releases `mutex` and blocks until a notify,
/// then reacquires `mutex` before returning (both as schedule points).
/// Callers must re-check their predicate in a loop, as with a real
/// condvar: notifies wake *all* waiters (a sound over-approximation that
/// also models spurious wakeups).
void CondWaitBlock(ObjectId cv, ObjectId mutex);

/// Condvar notify: schedule point; wakes every current waiter.
void CondNotify(ObjectId cv);

/// Model-checked assertion: records a violation (with the failing schedule
/// and trace) and aborts the current execution when `cond` is false.
/// Callable from virtual threads and from setup/final hooks.
void McAssert(bool cond, const char* msg);

/// Appends an annotation event to the trace (not a schedule point). Makes
/// failing interleavings readable: "entered write section", etc.
void Note(const char* text);

}  // namespace mc
}  // namespace aim

#endif  // AIM_MC_SCHEDULER_H_
